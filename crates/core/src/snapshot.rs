//! Crash-safe checkpoint snapshots for every kernel.
//!
//! PR 2 made the kernels *anytime*: a tripped budget returns a sound
//! partial result — and then throws it away. This module makes that
//! partial progress durable. Each kernel exposes a `*_resumable` entry
//! point that accepts an optional [`Snapshot`], periodically checkpoints
//! through the existing [`crate::budget::BudgetTicker`] poll sites (the
//! budget trips with [`Completion::CheckpointDue`], the kernel unwinds
//! exactly as for a real trip, and the driver persists the state and
//! re-enters), and — on a real trip — returns a final snapshot the
//! caller can persist for a later resume.
//!
//! # Wire format
//!
//! A snapshot is a single self-validating byte string:
//!
//! | field | size | meaning |
//! |---|---|---|
//! | magic | 4 | `b"NSKY"` |
//! | container version | 4 (u32 LE) | [`CONTAINER_VERSION`] |
//! | kernel id | 1 | [`KernelId`] wire code |
//! | graph fingerprint | 8 (u64 LE) | [`nsky_graph::Graph::fingerprint`] of the input |
//! | payload length | 8 (u64 LE) | byte length of the payload |
//! | payload | var | the kernel state, starting with its own format version |
//! | checksum | 4 (u32 LE) | CRC-32 (IEEE) over every preceding byte |
//!
//! All integers are little-endian; `f64` values travel as
//! [`f64::to_bits`] so resume is bit-exact.
//!
//! # Recovery contract
//!
//! Recovery never trusts the disk. [`Snapshot::from_bytes`] rejects any
//! torn, flipped or foreign input with a typed [`RecoveryError`]
//! (truncation outranks checksum, checksum outranks version, so a bit
//! flip in the version field reports [`RecoveryError::ChecksumMismatch`]
//! rather than masquerading as a future format). The `*_resumable` entry
//! points degrade every unusable snapshot to a clean from-scratch run
//! and surface the error in [`ResumableRun::recovery`] — never a panic,
//! never a wrong answer. The acceptance bar is equivalence: trip →
//! snapshot → resume produces byte-identical results to the
//! uninterrupted run (see `tests/tests/snapshot_faults.rs`).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::budget::{Completion, ExecutionBudget};

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"NSKY";

/// Version of the snapshot container layout (not of any kernel payload).
pub const CONTAINER_VERSION: u32 = 1;

/// Identifies which kernel produced a snapshot, so resume refuses to
/// feed one kernel's state to another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelId {
    /// `base_sky` (Algorithm 1).
    BaseSky,
    /// `filter_refine_sky` (Algorithm 3).
    FilterRefine,
    /// `filter_refine_sky_par` (multi-threaded refine).
    ParallelRefine,
    /// `max_clique_bnb` (branch and bound).
    CliqueBnb,
    /// `mc_brb` (vertex-anchored BnB).
    CliqueMcBrb,
    /// `nei_sky_mc` (skyline-seeded clique search).
    CliqueNeiSky,
    /// `top_k_cliques` in `Base` mode.
    TopkBase,
    /// `top_k_cliques` in `NeiSky` mode.
    TopkNeiSky,
    /// `greedy_group` (plain or CELF greedy centrality group).
    GreedyGroup,
    /// `nei_sky_group` (skyline-filtered greedy group).
    NeiSkyGroup,
    /// `MutableSkyline::apply_batch` (incremental edge-delta maintenance).
    DynamicMaintain,
}

impl KernelId {
    /// Stable wire code.
    fn code(self) -> u8 {
        match self {
            KernelId::BaseSky => 1,
            KernelId::FilterRefine => 2,
            KernelId::ParallelRefine => 3,
            KernelId::CliqueBnb => 4,
            KernelId::CliqueMcBrb => 5,
            KernelId::CliqueNeiSky => 6,
            KernelId::TopkBase => 7,
            KernelId::TopkNeiSky => 8,
            KernelId::GreedyGroup => 9,
            KernelId::NeiSkyGroup => 10,
            KernelId::DynamicMaintain => 11,
        }
    }

    fn from_code(code: u8) -> Option<KernelId> {
        Some(match code {
            1 => KernelId::BaseSky,
            2 => KernelId::FilterRefine,
            3 => KernelId::ParallelRefine,
            4 => KernelId::CliqueBnb,
            5 => KernelId::CliqueMcBrb,
            6 => KernelId::CliqueNeiSky,
            7 => KernelId::TopkBase,
            8 => KernelId::TopkNeiSky,
            9 => KernelId::GreedyGroup,
            10 => KernelId::NeiSkyGroup,
            11 => KernelId::DynamicMaintain,
            _ => return None,
        })
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            KernelId::BaseSky => "base-sky",
            KernelId::FilterRefine => "filter-refine",
            KernelId::ParallelRefine => "parallel-refine",
            KernelId::CliqueBnb => "clique-bnb",
            KernelId::CliqueMcBrb => "clique-mcbrb",
            KernelId::CliqueNeiSky => "clique-neisky",
            KernelId::TopkBase => "topk-base",
            KernelId::TopkNeiSky => "topk-neisky",
            KernelId::GreedyGroup => "greedy-group",
            KernelId::NeiSkyGroup => "neisky-group",
            KernelId::DynamicMaintain => "dynamic-maintain",
        };
        f.write_str(s)
    }
}

/// Why a snapshot could not be used. Every variant degrades to a clean
/// from-scratch run; none of them is ever a panic.
#[derive(Debug)]
pub enum RecoveryError {
    /// The snapshot file could not be read or written.
    Io(std::io::Error),
    /// The file does not open with the `NSKY` magic (not a snapshot).
    BadMagic,
    /// The container (or a kernel payload) carries a version this build
    /// does not understand.
    UnsupportedVersion {
        /// The version found in the snapshot.
        found: u32,
        /// The version this build writes and reads.
        expected: u32,
    },
    /// The CRC-32 over the snapshot bytes does not match (bit rot,
    /// a flipped byte, or an interrupted write that passed the length
    /// checks).
    ChecksumMismatch,
    /// The byte string ends before the declared length (torn tail or
    /// short write).
    Truncated,
    /// The snapshot was produced by a different kernel.
    KernelMismatch {
        /// The kernel recorded in the snapshot.
        found: KernelId,
        /// The kernel attempting to resume.
        expected: KernelId,
    },
    /// The snapshot was taken against a different input graph.
    GraphMismatch,
    /// The payload parsed but violates a structural invariant of the
    /// kernel state.
    Malformed(&'static str),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            RecoveryError::BadMagic => f.write_str("not a snapshot (bad magic)"),
            RecoveryError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {expected})"
                )
            }
            RecoveryError::ChecksumMismatch => f.write_str("snapshot checksum mismatch"),
            RecoveryError::Truncated => f.write_str("snapshot truncated"),
            RecoveryError::KernelMismatch { found, expected } => {
                write!(f, "snapshot belongs to kernel `{found}`, not `{expected}`")
            }
            RecoveryError::GraphMismatch => {
                f.write_str("snapshot was taken against a different input graph")
            }
            RecoveryError::Malformed(what) => write!(f, "malformed snapshot payload: {what}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven.
fn crc32(bytes: &[u8]) -> u32 {
    // One 256-entry table, built on first use.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0u32;
        while i < 256 {
            let mut c = i;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i as usize] = c;
            i += 1;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Append-only encoder for snapshot payloads: length-prefixed,
/// little-endian, `f64` as bits.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bits, so decode is bit-exact.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends an `Option<u32>` as a tag byte plus the value.
    pub fn put_opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u32(x);
            }
            None => self.put_u8(0),
        }
    }
}

/// Cursor-based decoder over a CRC-validated payload. Every read is
/// bounds-checked and returns a typed [`RecoveryError`], so decoding is
/// total even over hostile bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors unless the payload is fully consumed (trailing garbage is
    /// a malformed state, not padding).
    pub fn finish(&self) -> Result<(), RecoveryError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(RecoveryError::Malformed("trailing bytes after payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RecoveryError> {
        let end = self.pos.checked_add(n).ok_or(RecoveryError::Truncated)?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(RecoveryError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, RecoveryError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, RecoveryError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, RecoveryError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn take_usize(&mut self) -> Result<usize, RecoveryError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| RecoveryError::Malformed("length exceeds usize"))
    }

    /// Reads an `f64` from its IEEE-754 bits.
    pub fn take_f64(&mut self) -> Result<f64, RecoveryError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `bool` byte (`0` or `1`; anything else is malformed).
    pub fn take_bool(&mut self) -> Result<bool, RecoveryError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(RecoveryError::Malformed("bool byte out of range")),
        }
    }

    /// Reads a length-prefixed `u32` vector. The length is validated
    /// against the remaining bytes before allocating.
    pub fn take_u32_vec(&mut self) -> Result<Vec<u32>, RecoveryError> {
        let len = self.take_usize()?;
        if len.checked_mul(4).map_or(true, |b| b > self.remaining()) {
            return Err(RecoveryError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_u32()?);
        }
        Ok(out)
    }

    /// Reads an `Option<u32>` written by [`Writer::put_opt_u32`].
    pub fn take_opt_u32(&mut self) -> Result<Option<u32>, RecoveryError> {
        if self.take_bool()? {
            Ok(Some(self.take_u32()?))
        } else {
            Ok(None)
        }
    }

    /// Reads the payload's format-version `u32` and errors with
    /// [`RecoveryError::UnsupportedVersion`] unless it equals
    /// `expected`. Every [`KernelState::decode`] implementation calls
    /// this first (enforced by xtask rule R8 `snapshot-versioned`).
    pub fn expect_version(&mut self, expected: u32) -> Result<(), RecoveryError> {
        let found = self.take_u32()?;
        if found == expected {
            Ok(())
        } else {
            Err(RecoveryError::UnsupportedVersion { found, expected })
        }
    }
}

/// A kernel's serializable partial state.
///
/// Implementations declare a payload format version and a kernel
/// identity; `decode` must begin by calling
/// [`Reader::expect_version`]`(Self::FORMAT_VERSION)` (xtask rule R8
/// `snapshot-versioned` enforces the convention), and is only ever
/// invoked on CRC-validated bytes.
pub trait KernelState: Sized {
    /// Version of this state's payload encoding. Bump on any layout
    /// change.
    const FORMAT_VERSION: u32;
    /// The kernel this state belongs to.
    const KERNEL: KernelId;
    /// Serializes the state. Infallible: states are always encodable.
    fn encode(&self, w: &mut Writer);
    /// Deserializes a state from a CRC-validated payload.
    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError>;
}

/// One serialized kernel checkpoint: kernel identity, input-graph
/// fingerprint and the opaque state payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    kernel: KernelId,
    graph_fingerprint: u64,
    payload: Vec<u8>,
}

impl Snapshot {
    /// Packs a kernel state into a snapshot bound to the input graph
    /// with fingerprint `graph_fingerprint`.
    pub fn pack<S: KernelState>(graph_fingerprint: u64, state: &S) -> Snapshot {
        let mut w = Writer::new();
        w.put_u32(S::FORMAT_VERSION);
        state.encode(&mut w);
        Snapshot {
            kernel: S::KERNEL,
            graph_fingerprint,
            payload: w.into_bytes(),
        }
    }

    /// Unpacks the kernel state, refusing a snapshot from a different
    /// kernel or a different input graph.
    pub fn unpack<S: KernelState>(&self, graph_fingerprint: u64) -> Result<S, RecoveryError> {
        if self.kernel != S::KERNEL {
            return Err(RecoveryError::KernelMismatch {
                found: self.kernel,
                expected: S::KERNEL,
            });
        }
        if self.graph_fingerprint != graph_fingerprint {
            return Err(RecoveryError::GraphMismatch);
        }
        let mut r = Reader::new(&self.payload);
        let state = S::decode(&mut r)?;
        r.finish()?;
        Ok(state)
    }

    /// The kernel that produced this snapshot.
    pub fn kernel(&self) -> KernelId {
        self.kernel
    }

    /// The fingerprint of the graph the snapshot was taken against.
    pub fn graph_fingerprint(&self) -> u64 {
        self.graph_fingerprint
    }

    /// Serializes the snapshot to its self-validating byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 + 1 + 8 + 8 + self.payload.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
        out.push(self.kernel.code());
        out.extend_from_slice(&self.graph_fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a snapshot byte string.
    ///
    /// Rejection priority: truncation, then checksum, then version and
    /// kernel validity — so a bit flip in the version field reports
    /// [`RecoveryError::ChecksumMismatch`] rather than pretending to be
    /// a future format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, RecoveryError> {
        const HEADER: usize = 4 + 4 + 1 + 8 + 8;
        if bytes.len() < 4 {
            return Err(RecoveryError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(RecoveryError::BadMagic);
        }
        if bytes.len() < HEADER + 4 {
            return Err(RecoveryError::Truncated);
        }
        let mut r = Reader::new(&bytes[4..HEADER]);
        // The reads below cannot fail: the slice is exactly HEADER-4
        // bytes. Map errors defensively anyway (decoding must be total).
        let version = r.take_u32()?;
        let kernel_code = r.take_u8()?;
        let graph_fingerprint = r.take_u64()?;
        let payload_len = r.take_usize()?;
        let total = HEADER
            .checked_add(payload_len)
            .and_then(|t| t.checked_add(4))
            .ok_or(RecoveryError::Truncated)?;
        if bytes.len() < total {
            return Err(RecoveryError::Truncated);
        }
        if bytes.len() > total {
            return Err(RecoveryError::Malformed("trailing bytes after checksum"));
        }
        let body = &bytes[..total - 4];
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(&bytes[total - 4..]);
        if crc32(body) != u32::from_le_bytes(crc_bytes) {
            return Err(RecoveryError::ChecksumMismatch);
        }
        if version != CONTAINER_VERSION {
            return Err(RecoveryError::UnsupportedVersion {
                found: version,
                expected: CONTAINER_VERSION,
            });
        }
        let kernel = KernelId::from_code(kernel_code)
            .ok_or(RecoveryError::Malformed("unknown kernel id"))?;
        Ok(Snapshot {
            kernel,
            graph_fingerprint,
            payload: bytes[HEADER..HEADER + payload_len].to_vec(),
        })
    }

    /// Writes the serialized snapshot to `w` (used by [`Snapshot::save`]
    /// and by the fault-injection tests through [`FaultFile`]).
    pub fn write_to(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        w.write_all(&self.to_bytes())?;
        w.flush()
    }

    /// Atomically persists the snapshot to `path`: the bytes are written
    /// to a sibling temp file, synced, and renamed over the target, so a
    /// crash mid-save leaves either the old snapshot or the new one —
    /// never a torn file. On any error the temp file is removed and the
    /// previous snapshot (if any) is untouched.
    pub fn save(&self, path: &Path) -> Result<(), RecoveryError> {
        let tmp = sibling_tmp(path);
        let result = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result.map_err(RecoveryError::Io)
    }

    /// Loads and validates a snapshot from `path`.
    pub fn load(path: &Path) -> Result<Snapshot, RecoveryError> {
        let bytes = std::fs::read(path)?;
        Snapshot::from_bytes(&bytes)
    }
}

/// The temp-file path used by [`Snapshot::save`]: the target's file name
/// with a `.tmp` suffix, in the same directory (rename across
/// filesystems is not atomic).
fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("snapshot"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// A checkpoint sink for the resumable drivers: called once per due
/// checkpoint with the freshly packed snapshot. Sinks may fail (disk
/// full, unwritable path); the driver skips that checkpoint and keeps
/// computing — durability is best-effort, correctness is not.
pub trait Checkpointer {
    /// Persists one snapshot.
    fn save(&mut self, snapshot: &Snapshot) -> Result<(), RecoveryError>;
}

/// A [`Checkpointer`] that atomically rewrites one file per checkpoint.
#[derive(Debug)]
pub struct FileCheckpointer {
    path: PathBuf,
}

impl FileCheckpointer {
    /// A checkpointer writing to `path` via [`Snapshot::save`].
    pub fn new(path: impl Into<PathBuf>) -> FileCheckpointer {
        FileCheckpointer { path: path.into() }
    }
}

impl Checkpointer for FileCheckpointer {
    fn save(&mut self, snapshot: &Snapshot) -> Result<(), RecoveryError> {
        snapshot.save(&self.path)
    }
}

/// What a `*_resumable` entry point returns: the kernel outcome, the
/// final snapshot when the run ended on a real trip (resume it later),
/// and the recovery error when a provided snapshot was unusable and the
/// run degraded to a clean from-scratch start.
#[derive(Debug)]
pub struct ResumableRun<T> {
    /// The kernel's (possibly partial) outcome.
    pub outcome: T,
    /// The state at the final trip; `None` when the run completed.
    pub snapshot: Option<Snapshot>,
    /// Why the provided snapshot was rejected, if it was.
    pub recovery: Option<RecoveryError>,
}

/// FNV-1a over a byte string: the driver's cheap progress fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs a kernel to completion (or a real trip) through its
/// checkpoint-aware leg function, persisting a snapshot at every due
/// checkpoint.
///
/// `leg` runs the kernel from a state and returns the outcome, the state
/// at the stop point, and how the leg ended. On
/// [`Completion::CheckpointDue`] the driver packs and persists the
/// state, re-arms the budget and re-enters; on any real trip it returns
/// the outcome plus a final snapshot; on [`Completion::Complete`] it
/// returns the outcome alone.
///
/// Checkpointing is epoch-granular: a leg stops at the *next poll site*
/// after the period elapses. If a leg makes no serialized progress
/// between two checkpoints (one step of the kernel costs more polls than
/// the period), the driver doubles the effective period before
/// re-entering — so any finite step eventually completes and the loop
/// cannot livelock — and restores it after the next real progress.
pub fn drive<S: KernelState, T>(
    budget: &ExecutionBudget,
    graph_fingerprint: u64,
    resume: Option<&Snapshot>,
    initial: impl FnOnce() -> S,
    mut leg: impl FnMut(S) -> (T, S, Completion),
    mut sink: Option<&mut (dyn Checkpointer + '_)>,
) -> ResumableRun<T> {
    let mut recovery = None;
    let mut state = match resume {
        Some(snap) => match snap.unpack::<S>(graph_fingerprint) {
            Ok(s) => s,
            Err(e) => {
                recovery = Some(e);
                initial()
            }
        },
        None => initial(),
    };
    let base_period = budget.checkpoint_period();
    let mut period = base_period;
    let mut last_progress: Option<u64> = None;
    loop {
        let (outcome, stopped, completion) = leg(state);
        match completion {
            Completion::Complete => {
                return ResumableRun {
                    outcome,
                    snapshot: None,
                    recovery,
                }
            }
            Completion::CheckpointDue => {
                let snap = Snapshot::pack(graph_fingerprint, &stopped);
                let progress = fnv1a(&snap.payload);
                if last_progress == Some(progress) {
                    // No serialized progress since the last checkpoint:
                    // back off so the stuck step gets more polls.
                    period = period.saturating_mul(2).max(1);
                    budget.set_checkpoint_period(period);
                } else {
                    last_progress = Some(progress);
                    if period != base_period {
                        period = base_period;
                        budget.set_checkpoint_period(period);
                    }
                    if let Some(s) = sink.as_mut() {
                        // A failed save skips this checkpoint; the run
                        // continues and the previous snapshot survives.
                        let _ = s.save(&snap);
                    }
                }
                if !budget.rearm_after_checkpoint() {
                    // A real trip raced the checkpoint; surface it.
                    return ResumableRun {
                        outcome,
                        snapshot: Some(snap),
                        recovery,
                    };
                }
                state = stopped;
            }
            _ => {
                return ResumableRun {
                    outcome,
                    snapshot: Some(Snapshot::pack(graph_fingerprint, &stopped)),
                    recovery,
                }
            }
        }
    }
}

/// An `std::io::Write` shim that injects storage faults, for the
/// recovery tests: accepts `budget` bytes, then fails every further
/// write according to `fault`. The accepted prefix is exactly what a
/// crashed or out-of-space writer would have left on disk.
#[derive(Debug)]
pub struct FaultFile {
    written: Vec<u8>,
    budget: usize,
    fault: FaultKind,
}

/// How a [`FaultFile`] fails once its byte budget is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Writes report success but bytes past the budget are dropped — a
    /// short write that the writer never notices (crash before flush).
    ShortWrite,
    /// Writes past the budget fail with an out-of-space I/O error.
    Enospc,
}

impl FaultFile {
    /// A fault file accepting `budget` bytes before injecting `fault`.
    pub fn new(budget: usize, fault: FaultKind) -> FaultFile {
        FaultFile {
            written: Vec::new(),
            budget,
            fault,
        }
    }

    /// The bytes that actually reached "disk".
    pub fn written(&self) -> &[u8] {
        &self.written
    }
}

impl std::io::Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let room = self.budget - self.written.len().min(self.budget);
        let accept = buf.len().min(room);
        self.written.extend_from_slice(&buf[..accept]);
        if accept == buf.len() {
            return Ok(buf.len());
        }
        match self.fault {
            // Lie about success: the caller believes the write landed.
            FaultKind::ShortWrite => Ok(buf.len()),
            FaultKind::Enospc => Err(std::io::Error::other("injected ENOSPC")),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        xs: Vec<u32>,
        cursor: Option<u32>,
        score: f64,
    }

    impl KernelState for Demo {
        const FORMAT_VERSION: u32 = 7;
        const KERNEL: KernelId = KernelId::BaseSky;
        fn encode(&self, w: &mut Writer) {
            w.put_u32_slice(&self.xs);
            w.put_opt_u32(self.cursor);
            w.put_f64(self.score);
        }
        fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
            r.expect_version(Self::FORMAT_VERSION)?;
            Ok(Demo {
                xs: r.take_u32_vec()?,
                cursor: r.take_opt_u32()?,
                score: r.take_f64()?,
            })
        }
    }

    fn demo() -> Demo {
        Demo {
            xs: vec![3, 1, 4, 1, 5],
            cursor: Some(42),
            score: -0.125,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"NSKY"), crc32(b"NSKY"));
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let snap = Snapshot::pack(0xDEAD_BEEF, &demo());
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.kernel(), KernelId::BaseSky);
        assert_eq!(back.graph_fingerprint(), 0xDEAD_BEEF);
        assert_eq!(back.unpack::<Demo>(0xDEAD_BEEF).unwrap(), demo());
    }

    #[test]
    fn every_truncation_is_rejected_without_panic() {
        let bytes = Snapshot::pack(1, &demo()).to_bytes();
        for cut in 0..bytes.len() {
            let torn = &bytes[..cut];
            assert!(
                matches!(
                    Snapshot::from_bytes(torn),
                    Err(RecoveryError::Truncated | RecoveryError::BadMagic)
                ),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_harmless() {
        let snap = Snapshot::pack(1, &demo());
        let bytes = snap.to_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            match Snapshot::from_bytes(&mutated) {
                // Flips in the magic or the length field may surface as
                // those specific rejections before the CRC runs.
                Err(
                    RecoveryError::ChecksumMismatch
                    | RecoveryError::BadMagic
                    | RecoveryError::Truncated
                    | RecoveryError::Malformed(_),
                ) => {}
                other => panic!("flip at byte {i} produced {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_kernel_graph_and_version_are_typed() {
        let snap = Snapshot::pack(1, &demo());
        assert!(matches!(
            snap.unpack::<Demo>(2),
            Err(RecoveryError::GraphMismatch)
        ));

        struct Other;
        impl KernelState for Other {
            const FORMAT_VERSION: u32 = 1;
            const KERNEL: KernelId = KernelId::CliqueBnb;
            fn encode(&self, _w: &mut Writer) {}
            fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
                r.expect_version(Self::FORMAT_VERSION)?;
                Ok(Other)
            }
        }
        assert!(matches!(
            snap.unpack::<Other>(1),
            Err(RecoveryError::KernelMismatch { .. })
        ));

        // A payload claiming a future payload version.
        struct DemoV8(Demo);
        impl KernelState for DemoV8 {
            const FORMAT_VERSION: u32 = 8;
            const KERNEL: KernelId = KernelId::BaseSky;
            fn encode(&self, w: &mut Writer) {
                self.0.encode(w);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
                r.expect_version(Self::FORMAT_VERSION)?;
                Demo::decode(r).map(DemoV8)
            }
        }
        assert!(matches!(
            snap.unpack::<DemoV8>(1),
            Err(RecoveryError::UnsupportedVersion {
                found: 7,
                expected: 8
            })
        ));
    }

    #[test]
    fn fault_file_short_write_yields_truncated_snapshot() {
        let snap = Snapshot::pack(1, &demo());
        let full = snap.to_bytes();
        let mut ff = FaultFile::new(full.len() / 2, FaultKind::ShortWrite);
        // The short-write fault reports success, like a crash after a
        // partial flush.
        snap.write_to(&mut ff).unwrap();
        assert_eq!(ff.written(), &full[..full.len() / 2]);
        assert!(matches!(
            Snapshot::from_bytes(ff.written()),
            Err(RecoveryError::Truncated)
        ));
    }

    #[test]
    fn fault_file_enospc_errors_out() {
        let snap = Snapshot::pack(1, &demo());
        let mut ff = FaultFile::new(3, FaultKind::Enospc);
        let err = snap.write_to(&mut ff).unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert!(ff.written().len() <= 3);
    }

    #[test]
    fn save_and_load_round_trip_atomically() {
        let dir = std::env::temp_dir().join(format!("nsky-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.nsky");
        let snap = Snapshot::pack(9, &demo());
        snap.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), snap);
        // Overwrite with a different state: still atomic, no temp left.
        let snap2 = Snapshot::pack(
            9,
            &Demo {
                xs: vec![],
                cursor: None,
                score: 1.0,
            },
        );
        snap2.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), snap2);
        assert!(!sibling_tmp(&path).exists());
        // Corrupt the file on disk: load reports the checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(RecoveryError::ChecksumMismatch)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_reader_primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xAABB_CCDD);
        w.put_u64(u64::MAX);
        w.put_usize(12);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_u32_slice(&[1, 2, 3]);
        w.put_opt_u32(None);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xAABB_CCDD);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_usize().unwrap(), 12);
        assert!(r.take_f64().unwrap().is_nan());
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.take_opt_u32().unwrap(), None);
        r.finish().unwrap();
        // Reading past the end is a typed error, not a panic.
        assert!(matches!(
            Reader::new(&bytes).take_u32_vec(),
            Err(RecoveryError::Truncated | RecoveryError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_vec_length_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).take_u32_vec(),
            Err(RecoveryError::Truncated | RecoveryError::Malformed(_))
        ));
    }
}
