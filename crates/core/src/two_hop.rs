//! `Base2Hop` — comparison baseline that materializes every 2-hop
//! neighborhood up front, then applies the refine-phase machinery without
//! a filter phase.
//!
//! Its runtime sits between `BaseSky` and `FilterRefineSky`, but the
//! materialized lists make it the memory hog of Fig. 4 (out-of-memory on
//! WikiTalk in the paper).

use crate::domination::two_hop_neighbors;
use crate::result::{SkylineResult, SkylineStats};
use nsky_bloom::{BloomConfig, NeighborhoodFilters};
use nsky_graph::{Graph, VertexId};

/// Computes the skyline by materializing all 2-hop lists and refining
/// every vertex with bloom-filter checks.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::star;
/// use nsky_skyline::two_hop_sky;
///
/// assert_eq!(two_hop_sky(&star(6)).skyline, vec![0]);
/// ```
// HOT: the oracle baseline the ablations time against — keep its scan
// loops allocation-free so comparisons measure algorithm, not allocator.
pub fn two_hop_sky(g: &Graph) -> SkylineResult {
    let n = g.num_vertices();
    let mut dominator: Vec<VertexId> = (0..n as VertexId).collect();
    let mut stats = SkylineStats {
        candidate_count: n,
        ..SkylineStats::default()
    };

    // Materialize N2(u) for every vertex — the deliberate memory cost.
    let two_hop: Vec<Vec<VertexId>> = g.vertices().map(|u| two_hop_neighbors(g, u)).collect();
    let materialized: usize = two_hop.iter().map(|l| l.len()).sum();

    let filters = NeighborhoodFilters::build(
        g,
        g.vertices(),
        BloomConfig::for_max_degree(g.max_degree(), 2.0),
    );
    stats.peak_bytes = materialized * 4 + filters.size_bytes() + n * 4;

    for u in g.vertices() {
        if dominator[u as usize] != u {
            continue;
        }
        let du = g.degree(u);
        if du == 0 {
            continue;
        }
        for &w in &two_hop[u as usize] {
            if g.degree(w) < du || dominator[w as usize] != w {
                continue;
            }
            stats.pair_tests += 1;
            // The whole-filter pre-check tests N(u) ⊆ N(w). For an
            // *adjacent* pair the needed relation is N(u) ⊆ N[w] and
            // w ∈ N(u) never has its bit in BF(w), so the pre-check is
            // only applicable to non-adjacent pairs. (FilterRefineSky
            // never hits this case: candidates cannot have adjacent
            // dominators.)
            if du >= filters.words_per_filter() && !g.has_edge(u, w) && !filters.filter_subset(u, w)
            {
                stats.bf_word_rejects += 1;
                continue;
            }
            let mut dominated = true;
            for &x in g.neighbors(u) {
                if x == w {
                    continue;
                }
                if !filters.maybe_contains(w, x) {
                    stats.bf_bit_rejects += 1;
                    dominated = false;
                    break;
                }
                stats.adjacency_probes += 1;
                if !g.has_edge(w, x) {
                    dominated = false;
                    break;
                }
            }
            if !dominated {
                continue;
            }
            if g.degree(w) == du {
                if w < u {
                    dominator[u as usize] = w;
                    break;
                } else if dominator[w as usize] == w {
                    dominator[w as usize] = u;
                }
            } else {
                dominator[u as usize] = w;
                break;
            }
        }
    }
    SkylineResult::from_dominators(dominator, None, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::naive_skyline;
    use nsky_graph::generators::special::{clique, cycle, path};
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};

    #[test]
    fn matches_oracle() {
        for seed in 0..8 {
            let g = erdos_renyi(80, 0.08, seed);
            assert_eq!(
                two_hop_sky(&g).skyline,
                naive_skyline(&g).skyline,
                "seed {seed}"
            );
        }
        let g = chung_lu_power_law(200, 2.7, 5.0, 1);
        assert_eq!(two_hop_sky(&g).skyline, naive_skyline(&g).skyline);
    }

    #[test]
    fn special_families() {
        assert_eq!(two_hop_sky(&clique(7)).len(), 1);
        assert_eq!(two_hop_sky(&cycle(7)).len(), 7);
        assert_eq!(two_hop_sky(&path(7)).len(), 5);
    }

    #[test]
    fn memory_accounting_reflects_materialization() {
        let sparse = path(50);
        let dense = clique(50);
        let a = two_hop_sky(&sparse).stats.peak_bytes;
        let b = two_hop_sky(&dense).stats.peak_bytes;
        assert!(b > a, "clique 2-hop lists dwarf path lists: {a} vs {b}");
    }

    #[test]
    fn trivial() {
        assert!(two_hop_sky(&Graph::empty(0)).is_empty());
        assert_eq!(two_hop_sky(&Graph::empty(3)).len(), 3);
    }
}
