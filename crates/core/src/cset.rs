//! `BaseCSet` — comparison baseline: filter phase for pruning, then the
//! `BaseSky` counting scan restricted to candidates (no bloom filters).
//!
//! Time `O(dmax · Σ_{u∈C} deg(u))` — the candidate pruning without the
//! bloom-filter refinement, isolating the contribution of each technique
//! in the Fig. 3 comparison.

use crate::filter_phase::filter_phase;
use crate::result::{SkylineResult, SkylineStats};
use nsky_graph::Graph;

/// Computes the skyline with the candidate filter plus the counting scan.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::star;
/// use nsky_skyline::cset_sky;
///
/// assert_eq!(cset_sky(&star(6)).skyline, vec![0]);
/// ```
pub fn cset_sky(g: &Graph) -> SkylineResult {
    let n = g.num_vertices();
    let filter = filter_phase(g);
    let mut stats: SkylineStats = filter.seed_stats();
    stats.peak_bytes = n * (4 + 4 + 4);
    let mut dominator = filter.dominator.clone();

    let mut count: Vec<u32> = vec![0; n];
    let mut stamp: Vec<u32> = vec![u32::MAX; n];

    for &u in &filter.candidates {
        if dominator[u as usize] != u {
            continue;
        }
        let du = g.degree_u32(u);
        if du == 0 {
            continue;
        }
        let round = u;
        'scan: for &v in g.neighbors(u) {
            for w in g.neighbors(v).iter().copied().chain(std::iter::once(v)) {
                if w == u {
                    continue;
                }
                stats.adjacency_probes += 1;
                let wi = w as usize;
                if stamp[wi] != round {
                    stamp[wi] = round;
                    count[wi] = 0;
                }
                count[wi] += 1;
                if count[wi] == du {
                    stats.pair_tests += 1;
                    if g.degree_u32(w) == du {
                        if w < u {
                            dominator[u as usize] = w;
                            break 'scan;
                        } else if dominator[wi] == w {
                            dominator[wi] = u;
                        }
                    } else {
                        dominator[u as usize] = w;
                        break 'scan;
                    }
                }
            }
        }
    }
    SkylineResult::from_dominators(dominator, Some(filter.candidates), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::naive_skyline;
    use nsky_graph::generators::special::{clique, complete_binary_tree, cycle, path};
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};

    #[test]
    fn matches_oracle() {
        for seed in 0..8 {
            let g = erdos_renyi(85, 0.08, seed);
            assert_eq!(
                cset_sky(&g).skyline,
                naive_skyline(&g).skyline,
                "seed {seed}"
            );
        }
        let g = chung_lu_power_law(200, 2.8, 5.0, 2);
        assert_eq!(cset_sky(&g).skyline, naive_skyline(&g).skyline);
    }

    #[test]
    fn special_families() {
        assert_eq!(cset_sky(&clique(7)).len(), 1);
        assert_eq!(cset_sky(&cycle(7)).len(), 7);
        assert_eq!(cset_sky(&path(7)).len(), 5);
        assert_eq!(
            cset_sky(&complete_binary_tree(4)).len(),
            nsky_graph::generators::special::binary_tree_internal_count(4)
        );
    }

    #[test]
    fn candidate_pruning_restricts_refine_scans() {
        // On a star, only the hub survives the filter: the counting scan
        // runs for a single vertex.
        let g = nsky_graph::generators::special::star(40);
        let cset = cset_sky(&g);
        assert_eq!(cset.candidates.as_deref(), Some(&[0][..]));
        assert_eq!(cset.skyline, crate::base::base_sky(&g).skyline);
        assert_eq!(cset.stats.candidate_count, 1);
    }

    #[test]
    fn trivial() {
        assert!(cset_sky(&Graph::empty(0)).is_empty());
        assert_eq!(cset_sky(&Graph::empty(3)).len(), 3);
    }
}
