//! `FilterPhase` — the paper's Algorithm 2: candidate generation via
//! edge-constrained domination.
//!
//! ## Note on the printed pseudo-code
//!
//! Algorithm 2 as printed in the paper increments `T(v)` once per
//! neighbor, which could only ever trigger for degree-1 vertices and
//! contradicts Fig. 2(a) (clique ⇒ `|C| = 1`). The intended computation —
//! clear from Definition 4/5, Lemma 1 and Fig. 2 — is the edge-constrained
//! inclusion test `N[u] ⊆ N[v]` for every edge `(u, v)`. For adjacent
//! vertices this is equivalent to `|N(u) ∩ N(v)| = deg(u) − 1`
//! (every neighbor of `u` other than `v` must also neighbor `v`), which we
//! evaluate with a sorted-adjacency merge guarded by a degree pre-check.
//!
//! Worst-case `O(Σ_u deg(u)²)`; on sparse real-world graphs the degree
//! pre-check and the at-most-one-update rule make it behave like the
//! paper's `O(m)` claim (candidate scans stop at the first dominator).

use crate::result::SkylineStats;
use nsky_graph::{Graph, VertexId};

/// Output of the filter phase.
#[derive(Clone, Debug)]
pub struct FilterOutcome {
    /// The candidate set `C` (vertices not edge-constrained dominated),
    /// sorted ascending. `R ⊆ C` by Lemma 1.
    pub candidates: Vec<VertexId>,
    /// Edge-constrained dominator array: `dominator[u] == u` iff
    /// `u ∈ C`; otherwise a vertex that edge-constrained dominates `u`.
    pub dominator: Vec<VertexId>,
    /// Merge-probe counter (adjacency entries touched).
    pub probes: u64,
}

/// Runs the filter phase and returns the neighborhood candidates.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::clique;
/// use nsky_skyline::filter_phase;
///
/// // Fig. 2(a): a clique has a single candidate (the smallest id).
/// let out = filter_phase(&clique(6));
/// assert_eq!(out.candidates, vec![0]);
/// ```
// HOT: the O(n + m) filter sweep runs before any budget exists — all
// scratch is sized up front, the scans themselves must not allocate.
pub fn filter_phase(g: &Graph) -> FilterOutcome {
    let n = g.num_vertices();
    let mut dominator: Vec<VertexId> = (0..n as VertexId).collect();
    let mut probes = 0u64;

    for u in g.vertices() {
        if dominator[u as usize] != u {
            continue; // resolved by a smaller-ID adjacent twin
        }
        let du = g.degree(u);
        if du == 0 {
            continue;
        }
        for &v in g.neighbors(u) {
            let dv = g.degree(v);
            if dv < du {
                continue; // N[u] ⊆ N[v] needs deg(u) ≤ deg(v)
            }
            probes += 1;
            // For an adjacent pair, N[u] ⊆ N[v] ⟺ N(u) ⊆ N[v]; the
            // merge bails at the first neighbor of u missing from N[v],
            // so a typical rejection costs O(1), not O(deg u + deg v).
            if !g.open_included_in_closed(u, v) {
                continue;
            }
            // N[u] ⊆ N[v] holds.
            if dv == du {
                // N[u] = N[v]: adjacent twins, smaller ID dominates.
                if v < u {
                    dominator[u as usize] = v;
                    break;
                } else if dominator[v as usize] == v {
                    dominator[v as usize] = u;
                }
            } else {
                dominator[u as usize] = v;
                break;
            }
        }
    }

    let candidates = dominator
        .iter()
        .enumerate()
        .filter(|&(u, &o)| o == u as VertexId)
        .map(|(u, _)| u as VertexId)
        .collect();
    FilterOutcome {
        candidates,
        dominator,
        probes,
    }
}

impl FilterOutcome {
    /// Whether `u` survived the filter (is a candidate).
    #[inline]
    pub fn is_candidate(&self, u: VertexId) -> bool {
        self.dominator[u as usize] == u
    }

    /// Folds the filter counters into a [`SkylineStats`].
    pub(crate) fn seed_stats(&self) -> SkylineStats {
        SkylineStats {
            adjacency_probes: self.probes,
            candidate_count: self.candidates.len(),
            ..SkylineStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domination::edge_dominates;
    use crate::oracle::naive_skyline;
    use nsky_graph::generators::special::{clique, complete_binary_tree, cycle, path, star};
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};

    /// Oracle for the candidate set: u ∈ C iff no vertex edge-constrained
    /// dominates it.
    fn naive_candidates(g: &Graph) -> Vec<VertexId> {
        g.vertices()
            .filter(|&u| !g.vertices().any(|w| w != u && edge_dominates(g, w, u)))
            .collect()
    }

    #[test]
    fn fig2_candidate_sizes() {
        // clique: |C| = 1; cycle: |C| = n; path: |C| = n − 2;
        // complete binary tree: |C| = internal vertices.
        assert_eq!(filter_phase(&clique(9)).candidates.len(), 1);
        assert_eq!(filter_phase(&cycle(9)).candidates.len(), 9);
        assert_eq!(filter_phase(&path(9)).candidates.len(), 7);
        let t = complete_binary_tree(4);
        assert_eq!(
            filter_phase(&t).candidates.len(),
            nsky_graph::generators::special::binary_tree_internal_count(4)
        );
    }

    #[test]
    fn matches_candidate_oracle() {
        for seed in 0..6 {
            let g = erdos_renyi(80, 0.08, seed);
            assert_eq!(
                filter_phase(&g).candidates,
                naive_candidates(&g),
                "seed {seed}"
            );
        }
        let g = chung_lu_power_law(200, 2.7, 5.0, 3);
        assert_eq!(filter_phase(&g).candidates, naive_candidates(&g));
    }

    #[test]
    fn lemma1_skyline_subset_of_candidates() {
        for seed in 0..6 {
            let g = erdos_renyi(70, 0.1, seed + 100);
            let c = filter_phase(&g);
            let r = naive_skyline(&g);
            for &u in &r.skyline {
                assert!(
                    c.is_candidate(u),
                    "skyline vertex {u} filtered out (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn star_candidates() {
        // Every leaf is edge-dominated by the center; the center is not.
        let out = filter_phase(&star(6));
        assert_eq!(out.candidates, vec![0]);
        for leaf in 1..6 {
            assert_eq!(out.dominator[leaf], 0);
        }
    }

    #[test]
    fn isolated_vertices_are_candidates() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let out = filter_phase(&g);
        assert!(out.is_candidate(2) && out.is_candidate(3));
        // 0,1 adjacent twins: 0 survives.
        assert!(out.is_candidate(0));
        assert!(!out.is_candidate(1));
    }

    #[test]
    fn probes_counted() {
        let g = erdos_renyi(50, 0.2, 1);
        assert!(filter_phase(&g).probes > 0);
    }
}
