//! `FilterRefineSky` — the paper's Algorithm 3: the filter-refine search
//! framework with bloom-filter-accelerated inclusion tests.

use crate::budget::{BudgetTicker, Completion, ExecutionBudget};
use crate::exec::{self, ExecutionContext};
use crate::filter_phase::{filter_phase, FilterOutcome};
use crate::obs::{record_skyline_stats, Recorder};
use crate::result::{SkylineResult, SkylineStats};
use crate::snapshot::{
    Checkpointer, KernelId, KernelState, Reader, RecoveryError, ResumableRun, Snapshot, Writer,
};
use nsky_bloom::{BloomConfig, NeighborhoodFilters};
use nsky_graph::{Graph, VertexId};

/// Tuning knobs of [`filter_refine_sky`].
///
/// The defaults reproduce the paper's algorithm; the switches exist for
/// the ablation benches (`ablation_bloom`, `ablation_prefilter`,
/// `ablation_dedup`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefineConfig {
    /// Bloom width multiplier: filter bits = next power of two of
    /// `dmax × bits_per_element` (paper: 1.0, i.e. `dmax`-proportional).
    pub bloom_bits_per_element: f64,
    /// Enable the whole-filter pre-check `BF(u) & BF(w) == BF(u)`
    /// (line 14 of Algorithm 3).
    pub use_word_prefilter: bool,
    /// Deduplicate repeated 2-hop visits of the same `w` with a stamp
    /// array. The paper re-scans duplicates; deduplication is a strict
    /// improvement we quantify in `ablation_dedup`.
    pub dedup_two_hop: bool,
    /// Pre-index, per vertex, the *candidate* members of its adjacency
    /// list, and enumerate 2-hop dominator candidates through that index.
    /// This implements the paper's line-12 skip (`O(w) ≠ w ⇒ continue`)
    /// before enumeration instead of after it: a low-degree candidate
    /// next to a hub then scans the hub's few candidate neighbors
    /// instead of its whole adjacency list. Strict improvement,
    /// quantified by `ablation_candidate_index`.
    pub candidate_index: bool,
    /// Enumerate dominator candidates from a *single* neighbor's list —
    /// the minimum-degree neighbor — instead of the union over all
    /// neighbors. Sufficient because a dominator `w` of `u` satisfies
    /// `v ∈ N[w]` for **every** `v ∈ N(u)`, hence `w ∈ N[v_min]`; and
    /// `w = v_min` itself is impossible for a filter-phase candidate
    /// (an adjacent dominator would have edge-dominated `u`). This goes
    /// beyond the paper (which scans all neighbors' lists with the
    /// line-12 skip) and collapses the hub-adjacent pair explosion;
    /// quantified by `ablation_min_neighbor`.
    pub scan_min_neighbor: bool,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            bloom_bits_per_element: 2.0,
            use_word_prefilter: true,
            dedup_two_hop: true,
            candidate_index: true,
            scan_min_neighbor: true,
        }
    }
}

impl RefineConfig {
    /// The configuration closest to the paper's description
    /// (`dmax`-bit filters, pre-filter on, no deduplication, no
    /// candidate pre-indexing).
    pub fn paper_faithful() -> Self {
        RefineConfig {
            bloom_bits_per_element: 1.0,
            use_word_prefilter: true,
            dedup_two_hop: false,
            candidate_index: false,
            scan_min_neighbor: false,
        }
    }
}

/// Computes the neighborhood skyline with the filter-refine framework.
///
/// Phase 1 ([`filter_phase`]) removes every vertex that is
/// *edge-constrained* dominated, leaving candidates `C ⊇ R` (Lemma 1).
/// Phase 2 re-examines each candidate `u` against its 2-hop neighbors `w`
/// (1-hop dominators are impossible for candidates: an adjacent dominator
/// would have edge-dominated `u` in phase 1), with a cascade of
/// increasingly expensive checks:
///
/// 1. `deg(w) < deg(u)` — inclusion impossible;
/// 2. `w` already dominated — its skyline dominator also dominates `u`
///    (transitivity, `domination` Fact 2) and is scanned anyway;
/// 3. whole-filter test `BF(u) & BF(w) == BF(u)` — exact in the negative;
/// 4. per-neighbor `BFcheck` (bit test, exact in the negative) and
///    `NBRcheck` (binary search in the adjacency list, exact).
///
/// Equal degrees mean mutual inclusion (twins): the smaller ID dominates.
///
/// Time `O(m + dmax · Σ_{u∈C} deg(u)²)`, space `O(m + |C| · dmax)`
/// (Theorem 3).
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::chung_lu_power_law;
/// use nsky_skyline::{base_sky, filter_refine_sky, RefineConfig};
///
/// let g = chung_lu_power_law(500, 2.8, 6.0, 7);
/// let fast = filter_refine_sky(&g, &RefineConfig::default());
/// assert_eq!(fast.skyline, base_sky(&g).skyline);
/// // The candidate set is recorded for inspection (Lemma 1: R ⊆ C).
/// let c = fast.candidates.as_ref().unwrap();
/// assert!(fast.skyline.iter().all(|u| c.binary_search(u).is_ok()));
/// ```
pub fn filter_refine_sky(g: &Graph, cfg: &RefineConfig) -> SkylineResult {
    filter_refine_sky_with(g, cfg, &mut ExecutionContext::new()).outcome
}

/// The one entry point: [`filter_refine_sky`] under an
/// [`ExecutionContext`] — budget, cancellation, checkpoint/resume and
/// observability in any combination.
///
/// The recorder sees the kernel's three phases as spans (`"filter"`,
/// `"bloom_build"`, `"refine"`) and receives the run's full
/// [`SkylineStats`] counter table as one bulk flush at exit — never
/// per-event calls from the hot loops, so a no-op-recorder run is
/// byte-identical to [`filter_refine_sky`] and costs nothing measurable
/// (the `obs_overhead` ablation bench keeps this honest). After a budget
/// trip the outcome is partial — the skyline holds exactly the
/// candidates whose refine scan finished undominated before the trip (a
/// sound subset of the true skyline) — and the dominant allocations
/// (bloom filters, the candidate index) are charged against the memory
/// cap *before* they are made; a refused charge yields zero verified
/// vertices but the filter-phase dominator array and candidate set
/// intact.
pub fn filter_refine_sky_with(
    g: &Graph,
    cfg: &RefineConfig,
    ctx: &mut ExecutionContext<'_>,
) -> ResumableRun<SkylineResult> {
    let rec = ctx.effective_recorder();
    let run = exec::drive(ctx, g.fingerprint(), RefineState::fresh, |state, budget| {
        let (result, state) = filter_refine_leg(g, cfg, budget, state, rec);
        let completion = result.completion;
        (result, state, completion)
    });
    record_skyline_stats(rec, &run.outcome.stats);
    run
}

/// Deprecated twin: use [`filter_refine_sky_with`] with a budget-armed
/// context. With an unlimited budget the output is byte-identical to
/// [`filter_refine_sky`]; after a trip it is the sound verified prefix.
pub fn filter_refine_sky_budgeted(
    g: &Graph,
    cfg: &RefineConfig,
    budget: &ExecutionBudget,
) -> SkylineResult {
    filter_refine_sky_with(g, cfg, &mut ExecutionContext::new().budget(budget)).outcome
}

/// Deprecated twin: use [`filter_refine_sky_with`] with a
/// recorder-armed context.
pub fn filter_refine_sky_recorded(
    g: &Graph,
    cfg: &RefineConfig,
    rec: &dyn Recorder,
) -> SkylineResult {
    filter_refine_sky_with(g, cfg, &mut ExecutionContext::new().recorder(rec)).outcome
}

/// Resume state of an interrupted [`filter_refine_sky`] run: the refine
/// dominator array plus the index of the first candidate whose scan has
/// not finished. The filter phase, bloom filters and candidate index are
/// deterministic functions of the graph and config and are rebuilt on
/// resume; a candidate's scan writes only its own dominator entry and
/// stops at resolution, so a mid-scan trip leaves the entry pristine.
struct RefineState {
    dominator: Vec<VertexId>,
    cursor: usize,
}

impl RefineState {
    fn fresh() -> RefineState {
        RefineState {
            dominator: Vec::new(),
            cursor: 0,
        }
    }
}

impl KernelState for RefineState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::FilterRefine;

    fn encode(&self, w: &mut Writer) {
        w.put_u32_slice(&self.dominator);
        w.put_usize(self.cursor);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(RefineState {
            dominator: r.take_u32_vec()?,
            cursor: r.take_usize()?,
        })
    }
}

/// Deprecated twin: use [`filter_refine_sky_with`] with a context
/// arming budget, resume and checkpoint sink together (see
/// [`crate::snapshot`] for the checkpoint/resume contract).
pub fn filter_refine_sky_resumable<'a>(
    g: &Graph,
    cfg: &RefineConfig,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<SkylineResult> {
    filter_refine_sky_with(
        g,
        cfg,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}

/// Builds the candidate-only CSR adjacency: `cand_adj[v]` lists
/// `N(v) ∩ C` for every vertex, in two O(m) passes (count, then fill).
/// Both passes poll the ticker once per vertex row, and the adjacency
/// buffer is charged against the budget before it is allocated; a trip
/// surfaces as `Err(status)` so the caller can return a partial result.
// HOT: one of the two O(m) sweeps of the refine leg — no per-row heap
// traffic allowed; the buffers are sized once, outside the loops.
fn build_candidate_index(
    g: &Graph,
    filter: &FilterOutcome,
    budget: &ExecutionBudget,
    ticker: &mut BudgetTicker<'_>,
) -> Result<(Vec<usize>, Vec<VertexId>), Completion> {
    let n = g.num_vertices();
    let mut offsets = vec![0usize; n + 1];
    for u in g.vertices() {
        if let Some(status) = ticker.check() {
            return Err(status);
        }
        offsets[u as usize + 1] = offsets[u as usize]
            + g.neighbors(u)
                .iter()
                .filter(|&&w| filter.dominator[w as usize] == w)
                .count();
    }
    if let Some(status) = budget.charge((n + 1) * 8 + offsets[n] * 4) {
        return Err(status);
    }
    let mut adj = vec![0 as VertexId; offsets[n]];
    let mut cursor = 0usize;
    for u in g.vertices() {
        if let Some(status) = ticker.check() {
            return Err(status);
        }
        for &w in g.neighbors(u) {
            if filter.dominator[w as usize] == w {
                adj[cursor] = w;
                cursor += 1;
            }
        }
    }
    Ok((offsets, adj))
}

// HOT: the refine scan is the kernel's dominant cost (ROADMAP item 2
// keeps it allocation-free); every loop below polls the shared ticker.
fn filter_refine_leg(
    g: &Graph,
    cfg: &RefineConfig,
    budget: &ExecutionBudget,
    state: RefineState,
    rec: &dyn Recorder,
) -> (SkylineResult, RefineState) {
    let n = g.num_vertices();
    rec.phase_start("filter");
    let filter = filter_phase(g);
    rec.phase_end("filter");
    let mut stats: SkylineStats = filter.seed_stats();
    // A fresh (or structurally invalid) state starts from the filter
    // phase's dominator array; a resumed one continues where it stopped.
    let (mut dominator, start) =
        if state.dominator.len() == n && state.cursor <= filter.candidates.len() {
            (state.dominator, state.cursor)
        } else {
            (filter.dominator.clone(), 0)
        };

    let bloom_cfg = BloomConfig::for_max_degree(g.max_degree(), cfg.bloom_bits_per_element);
    let filter_estimate =
        filter.candidates.len() * (bloom_cfg.bits / 8 + 4) + n * 4 /* dominator */ + n * 4 /* stamps */;
    if let Some(status) = budget.charge(filter_estimate) {
        let verified = verified_prefix(&filter.candidates, start, &dominator);
        let result = SkylineResult::partial(
            verified,
            dominator.clone(),
            Some(filter.candidates),
            stats,
            status,
        );
        return (
            result,
            RefineState {
                dominator,
                cursor: start,
            },
        );
    }
    rec.phase_start("bloom_build");
    let filters = NeighborhoodFilters::build(g, filter.candidates.iter().copied(), bloom_cfg);
    stats.peak_bytes = filters.size_bytes() + n * 4 /* dominator */ + n * 4 /* stamps */;
    let mut ticker = budget.ticker();

    // Candidate-only adjacency index (CSR): cand_adj[v] lists N(v) ∩ C.
    let (cand_offsets, cand_adj) = if cfg.candidate_index {
        match build_candidate_index(g, &filter, budget, &mut ticker) {
            Ok((offsets, adj)) => {
                stats.peak_bytes += offsets.len() * 8 + adj.len() * 4;
                (offsets, adj)
            }
            Err(status) => {
                let verified = verified_prefix(&filter.candidates, start, &dominator);
                let result = SkylineResult::partial(
                    verified,
                    dominator.clone(),
                    Some(filter.candidates),
                    stats,
                    status,
                );
                return (
                    result,
                    RefineState {
                        dominator,
                        cursor: start,
                    },
                );
            }
        }
    } else {
        (Vec::new(), Vec::new())
    };
    let dominator_candidates = |v: VertexId| -> &[VertexId] {
        if cfg.candidate_index {
            &cand_adj[cand_offsets[v as usize]..cand_offsets[v as usize + 1]]
        } else {
            g.neighbors(v)
        }
    };

    rec.phase_end("bloom_build");

    let mut seen: Vec<u32> = vec![u32::MAX; n];
    let mut tripped: Option<Completion> = None;
    let mut verified_upto = filter.candidates.len();
    rec.phase_start("refine");
    'all: for (idx, &u) in filter.candidates.iter().enumerate().skip(start) {
        if dominator[u as usize] != u {
            continue;
        }
        let du = g.degree(u);
        if du == 0 {
            continue; // isolated: skyline by convention
        }
        // The whole-filter compare touches `words_per_filter` words; the
        // per-neighbor bit probes touch ≈ 1 word before the first miss.
        // Use the former only when u has enough neighbors to amortize it.
        let word_prefilter = cfg.use_word_prefilter && du >= filters.words_per_filter();
        let round = u;
        // Either the single minimum-degree neighbor (sufficient, see
        // RefineConfig::scan_min_neighbor) or all neighbors.
        let nbrs = g.neighbors(u);
        let scan_vs: &[VertexId] = if cfg.scan_min_neighbor {
            let mut best = 0usize;
            for i in 1..nbrs.len() {
                if let Some(status) = ticker.check() {
                    tripped = Some(status);
                    verified_upto = idx; // u's scan did not finish
                    break 'all;
                }
                if g.degree(nbrs[i]) < g.degree(nbrs[best]) {
                    best = i;
                }
            }
            &nbrs[best..=best]
        } else {
            nbrs
        };
        'scan: for &v in scan_vs {
            for &w in dominator_candidates(v) {
                if let Some(status) = ticker.check() {
                    tripped = Some(status);
                    verified_upto = idx; // u's scan did not finish
                    break 'all;
                }
                if w == u {
                    continue;
                }
                if cfg.dedup_two_hop {
                    if seen[w as usize] == round {
                        continue;
                    }
                    seen[w as usize] = round;
                }
                if g.degree(w) < du || dominator[w as usize] != w {
                    continue;
                }
                stats.pair_tests += 1;
                if word_prefilter {
                    stats.bloom_queries += 1;
                    if !filters.filter_subset(u, w) {
                        stats.bf_word_rejects += 1;
                        continue;
                    }
                    stats.bloom_hits += 1;
                }
                // Verify N(u) ⊆ N[w] neighbor by neighbor. `v` is known
                // common (w ∈ N(v) ⇒ v ∈ N(w)); `w` itself is in N[w].
                let mut dominated = true;
                for &x in g.neighbors(u) {
                    if let Some(status) = ticker.check() {
                        tripped = Some(status);
                        verified_upto = idx;
                        break 'all;
                    }
                    if x == w || x == v {
                        continue;
                    }
                    stats.bloom_queries += 1;
                    if !filters.maybe_contains(w, x) {
                        stats.bf_bit_rejects += 1;
                        dominated = false;
                        break;
                    }
                    stats.bloom_hits += 1;
                    stats.adjacency_probes += 1;
                    if !g.has_edge(w, x) {
                        dominated = false;
                        break;
                    }
                }
                if !dominated {
                    continue;
                }
                if g.degree(w) == du {
                    // Mutual twins (domination Fact 3): smaller ID wins.
                    if w < u {
                        dominator[u as usize] = w;
                        break 'scan;
                    }
                    // Larger-ID twin does not disqualify u; it will
                    // self-detect during its own scan.
                } else {
                    dominator[u as usize] = w;
                    break 'scan;
                }
            }
        }
    }
    rec.phase_end("refine");

    match tripped {
        None => {
            let cursor = filter.candidates.len();
            let result =
                SkylineResult::from_dominators(dominator.clone(), Some(filter.candidates), stats);
            (result, RefineState { dominator, cursor })
        }
        Some(status) => {
            // Candidates are refined in ascending order and never marked
            // dominated by a later scan, so the fixed points among the
            // finished prefix are exactly the verified skyline members.
            let verified = verified_prefix(&filter.candidates, verified_upto, &dominator);
            let result = SkylineResult::partial(
                verified,
                dominator.clone(),
                Some(filter.candidates),
                stats,
                status,
            );
            (
                result,
                RefineState {
                    dominator,
                    cursor: verified_upto,
                },
            )
        }
    }
}

/// The fixed points among the first `upto` candidates: exactly the
/// verified skyline members of a partial refine run.
fn verified_prefix(candidates: &[VertexId], upto: usize, dominator: &[VertexId]) -> Vec<VertexId> {
    candidates[..upto]
        .iter()
        .copied()
        .filter(|&v| dominator[v as usize] == v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::base_sky;
    use crate::oracle::naive_skyline;
    use nsky_graph::generators::special::{clique, complete_binary_tree, cycle, path, star};
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi, planted_partition};

    fn check(g: &Graph, cfg: &RefineConfig, label: &str) {
        let fast = filter_refine_sky(g, cfg);
        let truth = naive_skyline(g);
        assert_eq!(fast.skyline, truth.skyline, "{label}");
        for u in g.vertices() {
            let o = fast.dominator[u as usize];
            if o != u {
                assert!(
                    crate::domination::dominates(g, o, u),
                    "{label}: bogus witness {o} for {u}"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_default_config() {
        let cfg = RefineConfig::default();
        check(&clique(8), &cfg, "clique");
        check(&path(9), &cfg, "path");
        check(&cycle(9), &cfg, "cycle");
        check(&star(9), &cfg, "star");
        check(&complete_binary_tree(4), &cfg, "tree");
        for seed in 0..8 {
            check(&erdos_renyi(90, 0.07, seed), &cfg, &format!("er {seed}"));
        }
        for seed in 0..4 {
            check(
                &chung_lu_power_law(150, 2.7, 5.0, seed),
                &cfg,
                &format!("cl {seed}"),
            );
        }
        check(&planted_partition(64, 4, 0.5, 0.03, 2), &cfg, "pp");
    }

    #[test]
    fn matches_oracle_paper_faithful_config() {
        let cfg = RefineConfig::paper_faithful();
        for seed in 0..6 {
            check(
                &erdos_renyi(80, 0.08, seed + 50),
                &cfg,
                &format!("er pf {seed}"),
            );
        }
    }

    #[test]
    fn matches_oracle_all_switch_combinations() {
        for &prefilter in &[false, true] {
            for &dedup in &[false, true] {
                for &cand_index in &[false, true] {
                    for &min_nbr in &[false, true] {
                        for &bits in &[0.5, 4.0] {
                            let cfg = RefineConfig {
                                bloom_bits_per_element: bits,
                                use_word_prefilter: prefilter,
                                dedup_two_hop: dedup,
                                candidate_index: cand_index,
                                scan_min_neighbor: min_nbr,
                            };
                            check(
                                &chung_lu_power_law(120, 2.8, 5.0, 13),
                                &cfg,
                                &format!("cfg {cfg:?}"),
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn agrees_with_base_sky_on_larger_graphs() {
        let cfg = RefineConfig::default();
        for seed in 0..3 {
            let g = chung_lu_power_law(3_000, 2.7, 6.0, seed);
            assert_eq!(
                filter_refine_sky(&g, &cfg).skyline,
                base_sky(&g).skyline,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn candidate_set_recorded_and_contains_skyline() {
        let g = chung_lu_power_law(800, 2.8, 6.0, 3);
        let r = filter_refine_sky(&g, &RefineConfig::default());
        let c = r.candidates.as_ref().expect("filter phase ran");
        assert!(c.len() <= g.num_vertices());
        assert!(r.len() <= c.len());
        for u in &r.skyline {
            assert!(c.binary_search(u).is_ok());
        }
        assert_eq!(r.stats.candidate_count, c.len());
    }

    #[test]
    fn bloom_counters_fire_on_power_law_graphs() {
        let g = chung_lu_power_law(2_000, 2.7, 8.0, 5);
        let r = filter_refine_sky(&g, &RefineConfig::default());
        assert!(
            r.stats.bf_word_rejects + r.stats.bf_bit_rejects > 0,
            "bloom filters should reject some pairs: {:?}",
            r.stats
        );
        assert!(r.stats.peak_bytes > 0);
    }

    #[test]
    fn trivial_graphs() {
        let cfg = RefineConfig::default();
        assert!(filter_refine_sky(&Graph::empty(0), &cfg).is_empty());
        assert_eq!(filter_refine_sky(&Graph::empty(4), &cfg).len(), 4);
        let e = Graph::from_edges(2, [(0, 1)]);
        assert_eq!(filter_refine_sky(&e, &cfg).skyline, vec![0]);
    }
}
