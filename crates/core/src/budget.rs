//! Budgeted, cancellable execution for every skyline kernel.
//!
//! The paper's worst cases are real: `BaseSky` is `O(m·dmax)`, the clique
//! branch and bound is exponential, and a production service cannot let
//! one pathological query hold a worker hostage. This module is the
//! workspace's single execution-control layer:
//!
//! * [`ExecutionBudget`] — a deadline (behind the injectable
//!   [`DeadlineClock`] trait so tests are deterministic), a cooperative
//!   cancellation flag shared across parallel refine workers, and an
//!   approximate memory accountant (bloom-filter bits and candidate/stamp
//!   arrays are charged against a cap before they are allocated).
//! * [`BudgetTicker`] — the per-worker hot-loop handle. Kernels call
//!   [`BudgetTicker::check`] once per inner-loop step; the ticker
//!   decrements a local countdown and only consults the shared budget
//!   every `check_interval` ticks, so the default (unlimited) path costs
//!   one branch per step and budgeted runs stay within ~2% of open-loop
//!   speed.
//! * [`Completion`] — the status attached to every kernel result
//!   ([`crate::SkylineResult`], clique outcomes, greedy group outcomes).
//!   Anything other than [`Completion::Complete`] marks an *anytime*
//!   partial answer: the kernel stopped within one check interval of the
//!   trip and returned its best-so-far result instead of panicking or
//!   running on.
//!
//! A trip is **sticky and shared**: the first worker that observes an
//! exhausted budget publishes the status, and every other ticker on the
//! same budget trips at its next poll. See DESIGN.md §7 for what a
//! partial skyline means soundness-wise.
//!
//! # Examples
//!
//! ```
//! use nsky_graph::generators::chung_lu_power_law;
//! use nsky_skyline::budget::{Completion, ExecutionBudget, TripClock};
//! use nsky_skyline::{base_sky_budgeted, filter_refine_sky_budgeted, RefineConfig};
//!
//! let g = chung_lu_power_law(300, 2.8, 5.0, 1);
//! // Unlimited budget: identical to the open-loop algorithms.
//! let full = filter_refine_sky_budgeted(&g, &RefineConfig::default(), &ExecutionBudget::unlimited());
//! assert_eq!(full.completion, Completion::Complete);
//!
//! // A clock tripped deterministically at the 5th poll: the kernel
//! // stops and reports the candidates verified so far.
//! let budget = ExecutionBudget::unlimited()
//!     .deadline(TripClock::at_poll(5))
//!     .check_interval(1);
//! let partial = base_sky_budgeted(&g, &budget);
//! assert_eq!(partial.completion, Completion::DeadlineExceeded);
//! assert!(partial.skyline.len() <= full.skyline.len());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a kernel run ended. Attached to every kernel result; anything
/// other than [`Completion::Complete`] marks a partial (anytime) answer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Completion {
    /// The kernel ran to completion; the result is exact and identical
    /// to the open-loop algorithm's output.
    #[default]
    Complete,
    /// The deadline clock expired; the result is the best answer found
    /// before the trip.
    DeadlineExceeded,
    /// The memory accountant refused an allocation; the result is the
    /// best answer reachable within the cap.
    MemoryCapped,
    /// The cooperative cancellation flag was raised.
    Cancelled,
    /// A driver-armed checkpoint period elapsed (see
    /// [`ExecutionBudget::set_checkpoint_period`]). The kernel unwound
    /// exactly as for a real trip and its partial state is ready to be
    /// snapshotted; the driver re-arms with
    /// [`ExecutionBudget::rearm_after_checkpoint`] and re-enters.
    CheckpointDue,
}

impl Completion {
    /// Whether the run finished without tripping any budget.
    #[inline]
    pub fn is_complete(self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// Non-zero wire code for the sticky trip register.
    fn code(self) -> u8 {
        match self {
            Completion::Complete => 0,
            Completion::DeadlineExceeded => 1,
            Completion::MemoryCapped => 2,
            Completion::Cancelled => 3,
            Completion::CheckpointDue => 4,
        }
    }

    fn from_code(code: u8) -> Completion {
        match code {
            1 => Completion::DeadlineExceeded,
            2 => Completion::MemoryCapped,
            3 => Completion::Cancelled,
            4 => Completion::CheckpointDue,
            _ => Completion::Complete,
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Completion::Complete => "Complete",
            Completion::DeadlineExceeded => "DeadlineExceeded",
            Completion::MemoryCapped => "MemoryCapped",
            Completion::Cancelled => "Cancelled",
            Completion::CheckpointDue => "CheckpointDue",
        };
        f.write_str(s)
    }
}

/// An injectable deadline source. Production code uses [`WallDeadline`];
/// the fault-injection tests use [`TripClock`] so every trip lands on a
/// deterministic poll.
pub trait DeadlineClock: Send + Sync {
    /// Whether the deadline has passed. Polled at most once per
    /// `check_interval` ticks per worker; must be cheap and lock-free.
    fn expired(&self) -> bool;
}

impl<C: DeadlineClock + ?Sized> DeadlineClock for Arc<C> {
    fn expired(&self) -> bool {
        (**self).expired()
    }
}

/// Wall-clock deadline: expires `timeout` after construction.
#[derive(Debug)]
pub struct WallDeadline {
    deadline: Instant,
}

impl WallDeadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        WallDeadline {
            deadline: Instant::now() + timeout,
        }
    }
}

impl DeadlineClock for WallDeadline {
    fn expired(&self) -> bool {
        Instant::now() >= self.deadline
    }
}

/// Deterministic fault-injection clock: reports expiry from its `n`-th
/// poll onward (1-based), and counts every poll so tests can assert that
/// kernels stop within one check interval of the trip.
#[derive(Debug)]
pub struct TripClock {
    remaining: AtomicU64,
    polls: AtomicU64,
}

impl TripClock {
    /// Trips on the `n`-th [`DeadlineClock::expired`] call; polls
    /// `1..n` return `false`. `n == 0` behaves like `n == 1`
    /// (already expired).
    pub fn at_poll(n: u64) -> Self {
        TripClock {
            remaining: AtomicU64::new(n.saturating_sub(1)),
            polls: AtomicU64::new(0),
        }
    }

    /// Total `expired()` calls observed so far.
    pub fn polls(&self) -> u64 {
        // ORDERING: statistic counter; readers tolerate staleness and no
        // other memory is published through it.
        self.polls.load(Ordering::Relaxed)
    }
}

impl DeadlineClock for TripClock {
    fn expired(&self) -> bool {
        // ORDERING: pure event counter — no data is gated on its value.
        self.polls.fetch_add(1, Ordering::Relaxed);
        // ORDERING: the countdown only decides *when* to trip; the trip
        // itself is published by `ExecutionBudget::trip` with Release.
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_err()
    }
}

/// A handle for cancelling a running kernel from another thread.
/// Obtained with [`ExecutionBudget::cancel_token`] (tied to one budget),
/// [`CancelToken::new`] (detached), or [`CancelToken::child`] (scoped
/// under a parent); cloneable and cheap.
///
/// Tokens are **single-use**: once raised, a token stays raised forever
/// (the flag is never reset, so a raised token can never un-cancel a
/// kernel that already observed it). Long-lived owners — a server
/// connection serving many requests — must therefore never hand the same
/// token to two requests: request N's raised flag would instantly cancel
/// request N+1. The supported pattern is a fresh [`CancelToken::child`]
/// per request: raising a child never touches the parent or any sibling,
/// while raising the parent (connection closed, server draining) is
/// observed by every child. Link the per-request child to the request's
/// budget with [`ExecutionBudget::cancelled_by`].
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Flags of every ancestor, outermost first. Immutable after
    /// construction and shared by clone, so `child()` is two `Arc`
    /// bumps plus one small allocation.
    ancestors: Vec<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A fresh, detached token (no budget, no parent). Use
    /// [`ExecutionBudget::cancelled_by`] to make a budget observe it.
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            ancestors: Vec::new(),
        }
    }

    /// A child token scoped under `self`: cancelling the child raises
    /// only the child's own flag (the parent and any sibling children
    /// stay live), while cancelling `self` — or any ancestor — is
    /// observed by the child. This is the reset-free per-request
    /// pattern: a raised request token can never leak into the next
    /// request, because the next request gets a new child.
    pub fn child(&self) -> CancelToken {
        let mut ancestors = self.ancestors.clone();
        ancestors.push(Arc::clone(&self.flag));
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            ancestors,
        }
    }

    /// Raises the cooperative cancellation flag: every ticker on a
    /// budget observing this token (or a child of it) trips with
    /// [`Completion::Cancelled`] at its next poll. Ancestors and
    /// siblings are unaffected.
    pub fn cancel(&self) {
        // ORDERING: Release pairs with the Acquire load in
        // `ExecutionBudget::poll`, so everything the cancelling thread
        // wrote before calling `cancel()` is visible to the kernel when
        // it observes the flag and starts unwinding.
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested on this token or any of
    /// its ancestors.
    pub fn is_cancelled(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in `cancel`.
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        // ORDERING: Acquire pairs with the Release store a `cancel()`
        // on the raised ancestor performed, so its prior writes are
        // visible to the observer here.
        self.ancestors.iter().any(|a| a.load(Ordering::Acquire))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Default ticks between budget polls (see [`ExecutionBudget::check_interval`]).
/// One tick is one inner-loop step (nanoseconds of work), so 8192 ticks
/// still bounds trip latency well below a millisecond while amortizing
/// the clock read (`Instant::now` can cost ~100ns under virtualized
/// clocksources) to noise.
pub const DEFAULT_CHECK_INTERVAL: u32 = 8192;

/// The execution budget shared by one kernel run (and all of its worker
/// threads): optional deadline, optional memory cap, cooperative
/// cancellation, and the sticky trip status.
///
/// The default [`ExecutionBudget::unlimited`] budget is inert: tickers
/// derived from it never poll anything, so wrapping an algorithm in the
/// budgeted entry point with an unlimited budget produces byte-identical
/// results at indistinguishable cost.
#[derive(Default)]
pub struct ExecutionBudget {
    clock: Option<Box<dyn DeadlineClock>>,
    cancel: Arc<AtomicBool>,
    cancel_observed: AtomicBool,
    linked: Option<CancelToken>,
    memory_cap: Option<usize>,
    memory_charged: AtomicUsize,
    tripped: AtomicU8,
    check_interval: u32,
    checkpoint_period: AtomicU64,
    polls_until_checkpoint: AtomicU64,
}

impl std::fmt::Debug for ExecutionBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionBudget")
            .field("deadline", &self.clock.is_some())
            .field("memory_cap", &self.memory_cap)
            .field("check_interval", &self.check_interval)
            .field("status", &self.status())
            .finish()
    }
}

impl ExecutionBudget {
    /// A budget with no limits: checks are no-ops, results are identical
    /// to the open-loop algorithms.
    pub fn unlimited() -> Self {
        ExecutionBudget {
            check_interval: DEFAULT_CHECK_INTERVAL,
            ..ExecutionBudget::default()
        }
    }

    /// Convenience constructor: a wall-clock deadline `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        ExecutionBudget::unlimited().deadline(WallDeadline::after(timeout))
    }

    /// Installs a deadline clock (builder style).
    pub fn deadline(mut self, clock: impl DeadlineClock + 'static) -> Self {
        self.clock = Some(Box::new(clock));
        self
    }

    /// Installs an approximate memory cap in bytes: kernels charge their
    /// dominant allocations (bloom filters, candidate/stamp arrays)
    /// before making them, and trip with [`Completion::MemoryCapped`]
    /// when the running total would exceed the cap.
    pub fn memory_cap(mut self, bytes: usize) -> Self {
        self.memory_cap = Some(bytes);
        self
    }

    /// Sets how many [`BudgetTicker::check`] ticks elapse between polls
    /// of the clock/cancellation flag (clamped to ≥ 1; the first check
    /// of every ticker always polls, so an already-expired budget trips
    /// immediately). Default [`DEFAULT_CHECK_INTERVAL`].
    pub fn check_interval(mut self, ticks: u32) -> Self {
        self.check_interval = ticks.max(1);
        self
    }

    /// A handle for cancelling this run from another thread. Taking a
    /// token arms cancellation polling; take it before starting the
    /// kernel.
    pub fn cancel_token(&self) -> CancelToken {
        // ORDERING: Release pairs with the Acquire load in `is_active`:
        // a thread that sees the budget armed also sees the token's
        // shared flag fully initialized.
        self.cancel_observed.store(true, Ordering::Release);
        CancelToken {
            flag: Arc::clone(&self.cancel),
            ancestors: Vec::new(),
        }
    }

    /// Links an externally owned token (builder style): the budget trips
    /// with [`Completion::Cancelled`] once `token` — or any of its
    /// ancestors — is raised. This is how a server wires a per-request
    /// [`CancelToken::child`] into the request's budget without sharing
    /// the budget's own flag across requests.
    pub fn cancelled_by(mut self, token: CancelToken) -> Self {
        self.linked = Some(token);
        self
    }

    /// Whether any limit is armed (deadline, memory cap, an outstanding
    /// cancel token or a checkpoint period). Inactive budgets produce
    /// inert tickers.
    pub fn is_active(&self) -> bool {
        self.clock.is_some()
            || self.memory_cap.is_some()
            || self.linked.is_some()
            // ORDERING: Acquire pairs with the Release store in
            // `cancel_token`, so an armed budget is seen fully set up.
            || self.cancel_observed.load(Ordering::Acquire)
            // ORDERING: arming config; monotonic and self-contained, the
            // countdown value itself carries no other state.
            || self.checkpoint_period.load(Ordering::Relaxed) != 0
    }

    /// Arms periodic checkpointing: after `polls` shared budget polls the
    /// budget trips with [`Completion::CheckpointDue`], so every kernel
    /// unwinds through its existing trip path with a snapshottable
    /// partial state. `polls == 0` disarms. Drivers call
    /// [`ExecutionBudget::rearm_after_checkpoint`] after persisting the
    /// snapshot to resume counting.
    pub fn set_checkpoint_period(&self, polls: u64) {
        // ORDERING: configuration counters read only by `poll`; a poll
        // racing the (re)arming may count one period late, which is
        // within the checkpoint cadence contract. The CheckpointDue trip
        // itself is published by `trip` with Release.
        self.checkpoint_period.store(polls, Ordering::Relaxed);
        self.polls_until_checkpoint.store(polls, Ordering::Relaxed);
    }

    /// The currently armed checkpoint period in polls (`0` = disarmed).
    pub fn checkpoint_period(&self) -> u64 {
        // ORDERING: standalone config value; see `set_checkpoint_period`.
        self.checkpoint_period.load(Ordering::Relaxed)
    }

    /// Clears a [`Completion::CheckpointDue`] trip after the driver has
    /// persisted a snapshot, resetting the poll countdown and the memory
    /// accountant (a resumed leg rebuilds and re-charges its scratch from
    /// zero). Returns `false` — leaving the trip in place — when the
    /// sticky status is anything other than `CheckpointDue`, so real
    /// trips are never masked.
    pub fn rearm_after_checkpoint(&self) -> bool {
        let code = Completion::CheckpointDue.code();
        // ORDERING: AcqRel — Acquire sees the tripping thread's final
        // writes before clearing, Release publishes the reset countdown
        // to the next poller; Acquire on failure to read the real trip.
        if self
            .tripped
            .compare_exchange(code, 0, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        // ORDERING: config counters; see `set_checkpoint_period`.
        self.polls_until_checkpoint.store(
            self.checkpoint_period.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        // ORDERING: approximate accounting; see `charge`.
        self.memory_charged.store(0, Ordering::Relaxed);
        true
    }

    /// The sticky status: [`Completion::Complete`] until a trip, then
    /// the first trip's status forever.
    pub fn status(&self) -> Completion {
        // ORDERING: Acquire pairs with the Release in `trip`, so a
        // reader that observes a trip also observes every write the
        // tripping thread made before it (its published partial result).
        Completion::from_code(self.tripped.load(Ordering::Acquire))
    }

    /// Bytes charged so far (an approximate high-water mark; charges are
    /// never refunded).
    pub fn charged_bytes(&self) -> usize {
        // ORDERING: approximate accounting; see `charge`.
        self.memory_charged.load(Ordering::Relaxed)
    }

    /// Charges `bytes` against the memory cap. Returns the trip status
    /// when the cap (or a previous trip) refuses the allocation; callers
    /// must then stop and return their best-so-far answer.
    pub fn charge(&self, bytes: usize) -> Option<Completion> {
        let tripped = self.status();
        if !tripped.is_complete() {
            return Some(tripped);
        }
        let cap = self.memory_cap?;
        // ORDERING: the running total is a commutative sum — the cap
        // comparison uses this RMW's own returned value, and the trip
        // decision is published by `trip` with Release, so Relaxed loses
        // nothing.
        let total = self
            .memory_charged
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if total > cap {
            Some(self.trip(Completion::MemoryCapped))
        } else {
            None
        }
    }

    /// A hot-loop handle for this budget. Each worker thread takes its
    /// own ticker; all tickers share the budget's sticky trip status.
    pub fn ticker(&self) -> BudgetTicker<'_> {
        BudgetTicker {
            budget: if self.is_active() { Some(self) } else { None },
            interval: self.check_interval,
            countdown: 1, // first check polls, so expired budgets trip at once
            tripped: None,
        }
    }

    /// Publishes a trip (first writer wins) and returns the winning
    /// status.
    fn trip(&self, status: Completion) -> Completion {
        // ORDERING: AcqRel — Release publishes every write the tripping
        // thread made before the trip (pairs with the Acquire load in
        // `status`), Acquire orders this thread behind a winning earlier
        // trip; Acquire on failure so the loser sees the winner's state.
        match self
            .tripped
            .compare_exchange(0, status.code(), Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => status,
            Err(prev) => Completion::from_code(prev),
        }
    }

    /// One poll of every armed limit, in priority order: sticky trip,
    /// cancellation, deadline, then the checkpoint countdown (real trips
    /// always outrank a due checkpoint).
    fn poll(&self) -> Option<Completion> {
        let tripped = self.status();
        if !tripped.is_complete() {
            return Some(tripped);
        }
        // ORDERING: Acquire pairs with the Release store in
        // `CancelToken::cancel`, so the kernel that observes the request
        // also sees everything the canceller wrote before raising it.
        if self.cancel.load(Ordering::Acquire) {
            return Some(self.trip(Completion::Cancelled));
        }
        if self.linked.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(self.trip(Completion::Cancelled));
        }
        if let Some(clock) = &self.clock {
            if clock.expired() {
                return Some(self.trip(Completion::DeadlineExceeded));
            }
        }
        // ORDERING: config counters; see `set_checkpoint_period`.
        if self.checkpoint_period.load(Ordering::Relaxed) != 0 {
            let prev = self.polls_until_checkpoint.fetch_update(
                Ordering::Relaxed,
                Ordering::Relaxed,
                |v| v.checked_sub(1),
            );
            if matches!(prev, Ok(1) | Err(_)) {
                return Some(self.trip(Completion::CheckpointDue));
            }
        }
        None
    }
}

/// Per-worker budget handle for hot loops: one branch per tick, one
/// shared-budget poll every `check_interval` ticks, sticky after the
/// first trip. Create with [`ExecutionBudget::ticker`], or
/// [`BudgetTicker::inert`] where a callee requires one but the caller
/// has no budget to enforce.
#[derive(Debug)]
pub struct BudgetTicker<'a> {
    budget: Option<&'a ExecutionBudget>,
    interval: u32,
    countdown: u32,
    tripped: Option<Completion>,
}

impl BudgetTicker<'_> {
    /// A ticker that never trips (for callers without a budget).
    pub fn inert() -> BudgetTicker<'static> {
        BudgetTicker {
            budget: None,
            interval: 1,
            countdown: 1,
            tripped: None,
        }
    }

    /// One tick of kernel work. Returns the trip status once the budget
    /// is exhausted; the kernel must then unwind and return its
    /// best-so-far answer.
    ///
    /// The hot path is one decrement and one branch per tick — even with
    /// an armed budget, everything else (the sticky-trip check and the
    /// shared poll) runs only once per `check_interval`, keeping armed
    /// kernels within ~2% of open-loop speed.
    #[inline]
    pub fn check(&mut self) -> Option<Completion> {
        self.countdown -= 1;
        if self.countdown > 0 {
            return None;
        }
        self.countdown = self.interval;
        let budget = self.budget?;
        if self.tripped.is_some() {
            return self.tripped;
        }
        self.tripped = budget.poll();
        self.tripped
    }

    /// The status this ticker has already observed ([`Completion::Complete`]
    /// while it has not tripped). Lets callers distinguish "callee
    /// finished" from "callee unwound on a trip" without re-polling.
    pub fn status(&self) -> Completion {
        self.tripped.unwrap_or(Completion::Complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_inert() {
        let b = ExecutionBudget::unlimited();
        assert!(!b.is_active());
        let mut t = b.ticker();
        for _ in 0..10_000 {
            assert_eq!(t.check(), None);
        }
        assert_eq!(b.status(), Completion::Complete);
        assert_eq!(b.charge(usize::MAX), None, "no cap means free charges");
    }

    #[test]
    fn trip_clock_trips_on_exact_poll() {
        let c = TripClock::at_poll(3);
        assert!(!c.expired());
        assert!(!c.expired());
        assert!(c.expired());
        assert!(c.expired(), "sticky after the trip");
        assert_eq!(c.polls(), 4);
        let zero = TripClock::at_poll(0);
        assert!(zero.expired());
    }

    #[test]
    fn ticker_polls_every_interval_and_first_check() {
        let clock = Arc::new(TripClock::at_poll(u64::MAX));
        let b = ExecutionBudget::unlimited()
            .deadline(Arc::clone(&clock))
            .check_interval(4);
        let mut t = b.ticker();
        assert_eq!(t.check(), None);
        assert_eq!(clock.polls(), 1, "first check polls immediately");
        for _ in 0..4 {
            assert_eq!(t.check(), None);
        }
        assert_eq!(clock.polls(), 2, "then one poll per interval");
    }

    #[test]
    fn deadline_trip_is_sticky_and_shared() {
        let b = ExecutionBudget::unlimited()
            .deadline(TripClock::at_poll(2))
            .check_interval(1);
        let mut t1 = b.ticker();
        let mut t2 = b.ticker();
        assert_eq!(t1.check(), None);
        assert_eq!(t1.check(), Some(Completion::DeadlineExceeded));
        assert_eq!(t1.status(), Completion::DeadlineExceeded);
        // The second ticker observes the shared sticky trip on its first
        // poll without consulting the clock again.
        assert_eq!(t2.check(), Some(Completion::DeadlineExceeded));
        assert_eq!(b.status(), Completion::DeadlineExceeded);
    }

    #[test]
    fn cancellation_trips_tickers() {
        let b = ExecutionBudget::unlimited().check_interval(1);
        let token = b.cancel_token();
        assert!(b.is_active(), "outstanding token arms polling");
        assert!(!token.is_cancelled());
        let mut t = b.ticker();
        assert_eq!(t.check(), None);
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(t.check(), Some(Completion::Cancelled));
        assert_eq!(b.status(), Completion::Cancelled);
    }

    #[test]
    fn child_token_is_isolated_from_siblings_and_parent() {
        let conn = CancelToken::new();
        // Request N gets a child, runs, and is cancelled mid-flight.
        let req_n = conn.child();
        req_n.cancel();
        assert!(req_n.is_cancelled());
        assert!(
            !conn.is_cancelled(),
            "raising a child never touches the parent"
        );
        // Request N+1 gets a *fresh* child: request N's raised flag must
        // not leak into it — this is the reset-free reuse contract.
        let req_n1 = conn.child();
        assert!(!req_n1.is_cancelled());
        let b = ExecutionBudget::unlimited()
            .cancelled_by(req_n1.clone())
            .check_interval(1);
        assert!(b.is_active(), "a linked token arms polling");
        assert_eq!(b.ticker().check(), None, "fresh child: no spurious trip");
        // Raising the parent is observed by every live child.
        conn.cancel();
        assert!(req_n1.is_cancelled());
        assert_eq!(b.ticker().check(), Some(Completion::Cancelled));
        assert_eq!(b.status(), Completion::Cancelled);
    }

    #[test]
    fn grandchild_observes_every_ancestor() {
        let root = CancelToken::new();
        let mid = root.child();
        let leaf = mid.child();
        assert!(!leaf.is_cancelled());
        root.cancel();
        assert!(leaf.is_cancelled(), "grandchild sees the root's flag");
        assert!(mid.is_cancelled());
        // A sibling branched off the root after the fact is raised too
        // (the ancestor flag is already up) — children are per-scope,
        // not per-construction-order.
        assert!(root.child().is_cancelled());
    }

    #[test]
    fn linked_token_trips_budget_directly() {
        let token = CancelToken::new();
        let b = ExecutionBudget::unlimited()
            .cancelled_by(token.clone())
            .check_interval(1);
        let mut t = b.ticker();
        assert_eq!(t.check(), None);
        token.cancel();
        assert_eq!(t.check(), Some(Completion::Cancelled));
        // The budget's own token is independent of the linked one.
        let own = ExecutionBudget::unlimited();
        let own_token = own.cancel_token();
        token.cancel();
        assert!(!own_token.is_cancelled());
    }

    #[test]
    fn memory_cap_trips_on_overflow() {
        let b = ExecutionBudget::unlimited().memory_cap(1000);
        assert_eq!(b.charge(600), None);
        assert_eq!(b.charge(400), None, "exactly at the cap is allowed");
        assert_eq!(b.charge(1), Some(Completion::MemoryCapped));
        assert_eq!(b.status(), Completion::MemoryCapped);
        assert!(b.charged_bytes() >= 1000);
        // Subsequent tickers observe the sticky trip.
        assert_eq!(b.ticker().check(), Some(Completion::MemoryCapped));
    }

    #[test]
    fn first_trip_wins() {
        let b = ExecutionBudget::unlimited()
            .deadline(TripClock::at_poll(1))
            .memory_cap(0)
            .check_interval(1);
        assert_eq!(b.charge(8), Some(Completion::MemoryCapped));
        let mut t = b.ticker();
        assert_eq!(t.check(), Some(Completion::MemoryCapped));
        assert_eq!(b.status(), Completion::MemoryCapped);
    }

    #[test]
    fn wall_deadline_zero_is_already_expired() {
        let b = ExecutionBudget::with_timeout(Duration::ZERO).check_interval(1);
        let mut t = b.ticker();
        assert_eq!(t.check(), Some(Completion::DeadlineExceeded));
    }

    #[test]
    fn inert_ticker_never_trips() {
        let mut t = BudgetTicker::inert();
        for _ in 0..100 {
            assert_eq!(t.check(), None);
        }
        assert_eq!(t.status(), Completion::Complete);
    }

    #[test]
    fn completion_display_and_codes_round_trip() {
        for c in [
            Completion::Complete,
            Completion::DeadlineExceeded,
            Completion::MemoryCapped,
            Completion::Cancelled,
            Completion::CheckpointDue,
        ] {
            assert_eq!(Completion::from_code(c.code()), c);
            assert!(!format!("{c}").is_empty());
        }
        assert!(Completion::Complete.is_complete());
        assert!(!Completion::Cancelled.is_complete());
        assert!(!Completion::CheckpointDue.is_complete());
    }

    #[test]
    fn checkpoint_period_trips_and_rearms() {
        let b = ExecutionBudget::unlimited().check_interval(1);
        assert!(!b.is_active());
        b.set_checkpoint_period(3);
        assert!(
            b.is_active(),
            "an armed checkpoint period activates polling"
        );
        let mut t = b.ticker();
        assert_eq!(t.check(), None);
        assert_eq!(t.check(), None);
        assert_eq!(t.check(), Some(Completion::CheckpointDue));
        assert_eq!(b.status(), Completion::CheckpointDue);
        // Other tickers observe the shared sticky trip.
        assert_eq!(b.ticker().check(), Some(Completion::CheckpointDue));
        // Re-arming clears the trip and restarts the countdown.
        assert!(b.rearm_after_checkpoint());
        assert_eq!(b.status(), Completion::Complete);
        let mut t2 = b.ticker();
        assert_eq!(t2.check(), None);
        assert_eq!(t2.check(), None);
        assert_eq!(t2.check(), Some(Completion::CheckpointDue));
    }

    #[test]
    fn rearm_never_masks_real_trips() {
        let b = ExecutionBudget::unlimited()
            .deadline(TripClock::at_poll(1))
            .check_interval(1);
        b.set_checkpoint_period(100);
        let mut t = b.ticker();
        assert_eq!(t.check(), Some(Completion::DeadlineExceeded));
        assert!(!b.rearm_after_checkpoint(), "a real trip stays sticky");
        assert_eq!(b.status(), Completion::DeadlineExceeded);
    }

    #[test]
    fn rearm_resets_memory_accounting() {
        let b = ExecutionBudget::unlimited()
            .memory_cap(1000)
            .check_interval(1);
        b.set_checkpoint_period(1);
        assert_eq!(b.charge(900), None);
        let mut t = b.ticker();
        assert_eq!(t.check(), Some(Completion::CheckpointDue));
        assert!(b.rearm_after_checkpoint());
        assert_eq!(b.charged_bytes(), 0, "a resumed leg re-charges from zero");
        assert_eq!(b.charge(900), None, "the rebuilt scratch fits again");
    }
}
