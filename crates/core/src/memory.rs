//! Analytic memory accounting for the Fig. 4 comparison.
//!
//! Wall-clock memory of a Rust process is allocator- and OS-dependent;
//! following the paper's methodology we account the *algorithm-owned data
//! structures* analytically, which is also what Theorem 1/3 bound. The
//! numbers returned here are what the `fig4` harness prints.

use crate::domination::two_hop_neighbors;
use nsky_bloom::BloomConfig;
use nsky_graph::Graph;

/// Byte accounting for one algorithm run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// CSR graph footprint (shared by all algorithms).
    pub graph_bytes: usize,
    /// Algorithm-owned working state.
    pub working_bytes: usize,
}

impl MemoryBreakdown {
    /// Total footprint.
    pub fn total(&self) -> usize {
        self.graph_bytes + self.working_bytes
    }
}

/// `BaseSky`: dominator, counting and stamp arrays (`O(n)`).
pub fn base_sky_memory(g: &Graph) -> MemoryBreakdown {
    MemoryBreakdown {
        graph_bytes: g.size_bytes(),
        working_bytes: g.num_vertices() * (4 + 4 + 4),
    }
}

/// `BaseCSet`: same linear arrays plus the candidate list.
pub fn cset_memory(g: &Graph, candidate_count: usize) -> MemoryBreakdown {
    MemoryBreakdown {
        graph_bytes: g.size_bytes(),
        working_bytes: g.num_vertices() * (4 + 4 + 4) + candidate_count * 4,
    }
}

/// `FilterRefineSky`: linear arrays plus `|C|` bloom filters of width
/// `next_pow2(dmax · bits_per_element)` — the `O(m + |C|·dmax)` bound of
/// Theorem 3.
pub fn filter_refine_memory(
    g: &Graph,
    candidate_count: usize,
    bits_per_element: f64,
) -> MemoryBreakdown {
    let bits = BloomConfig::for_max_degree(g.max_degree(), bits_per_element).bits;
    MemoryBreakdown {
        graph_bytes: g.size_bytes(),
        working_bytes: g.num_vertices() * (4 + 4 + 4)
            + candidate_count * (bits / 8)
            + g.num_vertices() * 4, // filter slot map
    }
}

/// Cheap upper bound on the `Base2Hop` materialization:
/// `Σ_u Σ_{v∈N(u)} deg(v) = Σ_v deg(v)²` wedge entries (the dedup can
/// only shrink it), in bytes. `O(n)`; the figure harness uses it to skip
/// `Base2Hop` with an "INF" entry — the paper's out-of-memory outcome on
/// WikiTalk.
pub fn two_hop_upper_bound_bytes(g: &Graph) -> u64 {
    g.vertices()
        .map(|v| (g.degree(v) as u64).pow(2))
        .sum::<u64>()
        .saturating_mul(4)
}

/// `Base2Hop`: materialized 2-hop lists plus filters for *all* vertices.
/// Computing the exact footprint walks every 2-hop list (`O(m·dmax)`), so
/// call this only from the harness.
pub fn two_hop_memory(g: &Graph) -> MemoryBreakdown {
    let materialized: usize = g.vertices().map(|u| two_hop_neighbors(g, u).len()).sum();
    let bits = BloomConfig::for_max_degree(g.max_degree(), 2.0).bits;
    MemoryBreakdown {
        graph_bytes: g.size_bytes(),
        working_bytes: materialized * 4 + g.num_vertices() * (bits / 8 + 4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_graph::generators::chung_lu_power_law;
    use nsky_graph::generators::special::clique;

    #[test]
    fn two_hop_dominates_other_footprints_on_dense_graphs() {
        let g = clique(60);
        let base = base_sky_memory(&g);
        let two = two_hop_memory(&g);
        assert!(two.working_bytes > 10 * base.working_bytes);
        assert_eq!(base.graph_bytes, two.graph_bytes);
    }

    #[test]
    fn refine_memory_scales_with_candidates_and_width() {
        let g = chung_lu_power_law(2_000, 2.8, 6.0, 1);
        let small = filter_refine_memory(&g, 100, 1.0);
        let many = filter_refine_memory(&g, 1_000, 1.0);
        let wide = filter_refine_memory(&g, 100, 8.0);
        assert!(many.working_bytes > small.working_bytes);
        assert!(wide.working_bytes > small.working_bytes);
        assert!(small.total() > small.working_bytes);
    }

    #[test]
    fn ordering_matches_fig4_on_power_law_graph() {
        // Fig. 4: BaseSky ≈ BaseCSet < FilterRefineSky < Base2Hop.
        let g = chung_lu_power_law(3_000, 2.7, 8.0, 2);
        let c = crate::filter_phase(&g).candidates.len();
        let base = base_sky_memory(&g).working_bytes;
        let cset = cset_memory(&g, c).working_bytes;
        let refine = filter_refine_memory(&g, c, 2.0).working_bytes;
        let two = two_hop_memory(&g).working_bytes;
        assert!(base <= cset);
        assert!(cset < refine, "cset {cset} refine {refine}");
        assert!(refine < two, "refine {refine} two-hop {two}");
    }
}
