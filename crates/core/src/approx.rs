//! ε-approximate neighborhood skyline — the future direction the paper
//! names in its Sec. III remark ("approximate neighborhood skyline based
//! on approximate domination relationships ... requires new definitions
//! and new algorithms").
//!
//! # Definitions
//!
//! `v` is **ε-neighborhood-included** in `u` when all but an ε fraction
//! of `v`'s neighbors lie in `N[u]`:
//! `|N(v) \ N[u]| ≤ ε · |N(v)|`. `v ≤_ε u` (ε-dominated) when `v` is
//! ε-included in `u` and either `u` is not ε-included in `v`, or they
//! are mutually ε-included and `uid < vid` (the Definition 2 tie-break).
//! The **ε-approximate skyline** `R_ε` is the set of vertices ε-dominated
//! by nobody. `ε = 0` recovers the exact skyline.
//!
//! # What changes relative to the exact problem
//!
//! * ε-inclusion is **not transitive**, so the refine-phase shortcut
//!   "skip already-dominated dominator candidates" is unsound; the
//!   algorithm checks every 2-hop pair exactly (a `BaseSky`-style
//!   counting scan with a relaxed threshold).
//! * For `ε < 1`, an ε-dominator must still cover at least one neighbor,
//!   so it still lives within two hops — the scan structure survives.
//! * ε-**inclusion** is monotone in ε (more slack, more inclusions), but
//!   `R_ε` itself is *not* globally antitone: raising ε can turn a
//!   strict domination into a *mutual* one, and the ID tie-break then
//!   favors the smaller vertex — resurrecting a previously dominated
//!   larger-ID vertex. (Found by property testing; the pairwise
//!   monotonicity is what is guaranteed and tested.) On hub-dominated
//!   graphs the skyline still shrinks rapidly with ε in practice.

use crate::result::{SkylineResult, SkylineStats};
use nsky_graph::{Graph, VertexId};

/// Whether `w` ε-dominates `u` (exact pairwise check; used by the oracle
/// and exposed for downstream pruning rules).
///
/// # Panics
///
/// Panics unless `0 ≤ epsilon < 1` (at `ε ≥ 1` everything dominates
/// everything and the concept degenerates).
pub fn approx_dominates(g: &Graph, w: VertexId, u: VertexId, epsilon: f64) -> bool {
    assert!((0.0..1.0).contains(&epsilon), "epsilon out of [0,1)");
    if w == u {
        return false;
    }
    let fwd = eps_included(g, u, w, epsilon);
    if !fwd {
        return false;
    }
    if eps_included(g, w, u, epsilon) {
        w < u
    } else {
        true
    }
}

/// `|N(u) \ N[w]| ≤ ε · deg(u)` — ε-neighborhood inclusion.
fn eps_included(g: &Graph, u: VertexId, w: VertexId, epsilon: f64) -> bool {
    let du = g.degree(u);
    if du == 0 {
        // Operational convention (crate docs): isolated vertices are
        // never treated as dominated.
        return false;
    }
    let missing = g
        .neighbors(u)
        .iter()
        .filter(|&&x| x != w && !g.has_edge(w, x))
        .count();
    (missing as f64) <= epsilon * du as f64
}

/// Computes the ε-approximate neighborhood skyline with a counting scan
/// over 2-hop neighborhoods (threshold `T(w) ≥ (1 − ε)·deg(u)`).
///
/// `O(m·dmax)` time like `BaseSky`; no filter phase is applicable
/// because ε-inclusion is not transitive.
///
/// # Panics
///
/// Panics unless `0 ≤ epsilon < 1`.
///
/// # Examples
///
/// ```
/// use nsky_graph::Graph;
/// use nsky_skyline::approx::approx_sky;
/// use nsky_skyline::base_sky;
///
/// // A near-follower: v3 shares 2 of its 3 neighbors with v0.
/// let g = Graph::from_edges(
///     6,
///     [(0, 1), (0, 2), (1, 2), (3, 1), (3, 2), (3, 4), (0, 5)],
/// );
/// assert!(base_sky(&g).contains(3), "exactly: v3 is undominated");
/// let r = approx_sky(&g, 0.34);
/// assert!(!r.contains(3), "ε = 1/3 lets v0 dominate v3");
/// // ε = 0 recovers the exact skyline.
/// assert_eq!(approx_sky(&g, 0.0).skyline, base_sky(&g).skyline);
/// ```
pub fn approx_sky(g: &Graph, epsilon: f64) -> SkylineResult {
    assert!((0.0..1.0).contains(&epsilon), "epsilon out of [0,1)");
    let n = g.num_vertices();
    let mut dominator: Vec<VertexId> = (0..n as VertexId).collect();
    let mut count: Vec<u32> = vec![0; n];
    let mut stamp: Vec<u32> = vec![u32::MAX; n];
    let mut stats = SkylineStats {
        candidate_count: n,
        peak_bytes: n * 12,
        ..SkylineStats::default()
    };

    for u in g.vertices() {
        if dominator[u as usize] != u {
            continue; // status fixed by a mutual tie-break earlier
        }
        let du = g.degree(u);
        if du == 0 {
            continue;
        }
        // w ε-covers u when it reaches at least this overlap.
        // CAST: `du` is a u32 degree and ε ∈ [0, 1], so the ceil'd
        // product lies in [0, du] and fits u32 exactly.
        let needed = ((1.0 - epsilon) * du as f64).ceil() as u32;
        let round = u;
        'scan: for &v in g.neighbors(u) {
            for w in g.neighbors(v).iter().copied().chain(std::iter::once(v)) {
                if w == u {
                    continue;
                }
                stats.adjacency_probes += 1;
                let wi = w as usize;
                if stamp[wi] != round {
                    stamp[wi] = round;
                    count[wi] = 0;
                }
                count[wi] += 1;
                if count[wi] == needed {
                    stats.pair_tests += 1;
                    // u is ε-included in w; classify the pair exactly
                    // (the reverse direction needs its own check — ε
                    // breaks the equal-degree shortcut of Fact 3).
                    if eps_included(g, w, u, epsilon) {
                        if w < u {
                            dominator[u as usize] = w;
                            break 'scan;
                        } else if dominator[wi] == w {
                            dominator[wi] = u;
                        }
                    } else {
                        dominator[u as usize] = w;
                        break 'scan;
                    }
                }
            }
        }
    }
    SkylineResult::from_dominators(dominator, None, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::base_sky;
    use nsky_graph::generators::special::{clique, path, star};
    use nsky_graph::generators::{erdos_renyi, leafy_preferential};

    /// Quadratic oracle over the pairwise definition.
    fn naive_approx(g: &Graph, eps: f64) -> Vec<VertexId> {
        g.vertices()
            .filter(|&u| {
                !g.vertices()
                    .any(|w| w != u && approx_dominates(g, w, u, eps))
            })
            .collect()
    }

    #[test]
    fn epsilon_zero_equals_exact_skyline() {
        for seed in 0..5 {
            let g = erdos_renyi(70, 0.08, seed);
            assert_eq!(approx_sky(&g, 0.0).skyline, base_sky(&g).skyline);
        }
    }

    #[test]
    fn matches_pairwise_oracle() {
        for seed in 0..4 {
            let g = erdos_renyi(60, 0.1, seed);
            for eps in [0.0, 0.2, 0.4, 0.7] {
                assert_eq!(
                    approx_sky(&g, eps).skyline,
                    naive_approx(&g, eps),
                    "seed {seed} eps {eps}"
                );
            }
        }
    }

    #[test]
    fn skyline_shrinks_with_epsilon_on_hub_graphs() {
        // Not a theorem (tie-breaks can resurrect vertices — see the
        // module docs), but the typical behavior on hub-dominated
        // graphs, asserted on this fixed instance.
        let g = leafy_preferential(400, 0.9, 1.0, 6, 3);
        let mut prev = usize::MAX;
        for eps in [0.0, 0.15, 0.3, 0.5, 0.75] {
            let r = approx_sky(&g, eps).len();
            assert!(
                r <= prev,
                "R_ε grew on this instance: {r} after {prev} at ε={eps}"
            );
            prev = r;
        }
        assert!(
            approx_sky(&g, 0.75).len() < approx_sky(&g, 0.0).len(),
            "a large ε should strictly shrink the skyline on this graph"
        );
    }

    #[test]
    fn epsilon_can_resurrect_a_vertex() {
        // Witness for the non-monotonicity documented above: w strictly
        // dominates u at ε = 0; at large ε the pair turns mutual and the
        // tie-break (w < u dominates) — if u < w — flips in u's favor.
        // Path P3: 1 dominates 0 and 2 at ε = 0 (R = {1}); at ε = 0.5
        // endpoints and the midpoint are mutually ε-included, so the
        // smallest id sweeps (R = {0}).
        use nsky_graph::generators::special::path;
        let g = path(3);
        assert_eq!(approx_sky(&g, 0.0).skyline, vec![1]);
        let r = approx_sky(&g, 0.6);
        assert!(
            r.contains(0),
            "vertex 0 resurrected by the tie-break: {:?}",
            r.skyline
        );
    }

    #[test]
    fn special_families_under_epsilon() {
        // Clique: already one vertex at ε = 0; stays one.
        assert_eq!(approx_sky(&clique(8), 0.5).len(), 1);
        // Star: hub only, any ε.
        assert_eq!(approx_sky(&star(8), 0.3).skyline, vec![0]);
        // Path interior at ε = 0.5: each interior vertex has 2 neighbors;
        // missing 1 of 2 is allowed, so neighbors dominate each other and
        // the smallest interior id sweeps.
        let r = approx_sky(&path(8), 0.5);
        assert!(
            r.len() < 6,
            "ε=0.5 collapses the path skyline: {:?}",
            r.skyline
        );
    }

    #[test]
    fn isolated_vertices_stay_skyline() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let r = approx_sky(&g, 0.5);
        assert!(r.contains(2) && r.contains(3));
    }

    #[test]
    #[should_panic(expected = "epsilon out of")]
    fn rejects_epsilon_one() {
        approx_sky(&path(3), 1.0);
    }
}
