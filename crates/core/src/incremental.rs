//! Skyline maintenance under vertex removal.
//!
//! `NeiSkyTopkMCC` (paper Sec. IV-C.3) repeatedly retires a clique seed
//! vertex and needs the skyline of the residual graph.
//! [`DynamicSkyline::remove_vertex`] re-evaluates only the vertices whose
//! status can actually change — the removed vertex's neighbors and the
//! vertices whose recorded dominator was the removed vertex or one of its
//! neighbors (see [`DynamicSkyline::remove_vertex_report`] for why that
//! set is exhaustive) — with exact masked domination checks.

use crate::refine::{filter_refine_sky, RefineConfig};
use nsky_graph::{Graph, VertexId};

/// Neighborhood skyline of a graph under a sequence of vertex removals.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::star;
/// use nsky_skyline::incremental::DynamicSkyline;
///
/// let g = star(5);
/// let mut dyn_sky = DynamicSkyline::new(&g);
/// assert_eq!(dyn_sky.skyline(), vec![0]);
/// // Removing the hub turns every leaf into an isolated skyline vertex.
/// dyn_sky.remove_vertex(0);
/// assert_eq!(dyn_sky.skyline(), vec![1, 2, 3, 4]);
/// ```
#[derive(Clone, Debug)]
pub struct DynamicSkyline<'g> {
    g: &'g Graph,
    alive: Vec<bool>,
    dominator: Vec<VertexId>,
    alive_count: usize,
    /// Reusable visited stamps for `recompute` (stamp == round ⇒ seen).
    stamp: Vec<u32>,
    round: u32,
}

impl<'g> DynamicSkyline<'g> {
    /// Initializes from the full graph using [`filter_refine_sky`].
    pub fn new(g: &'g Graph) -> Self {
        let r = filter_refine_sky(g, &RefineConfig::default());
        DynamicSkyline {
            g,
            alive: vec![true; g.num_vertices()],
            dominator: r.dominator,
            alive_count: g.num_vertices(),
            stamp: vec![u32::MAX; g.num_vertices()],
            round: 0,
        }
    }

    /// Whether `u` is still present.
    pub fn is_alive(&self, u: VertexId) -> bool {
        self.alive[u as usize]
    }

    /// Number of remaining vertices.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Whether `u` is currently a skyline vertex of the residual graph.
    pub fn is_skyline(&self, u: VertexId) -> bool {
        self.alive[u as usize] && self.dominator[u as usize] == u
    }

    /// Current skyline, sorted ascending.
    pub fn skyline(&self) -> Vec<VertexId> {
        (0..self.g.num_vertices() as VertexId)
            .filter(|&u| self.is_skyline(u))
            .collect()
    }

    /// Removes `x` and repairs the skyline of the residual graph.
    ///
    /// # Panics
    ///
    /// Panics if `x` was already removed.
    pub fn remove_vertex(&mut self, x: VertexId) {
        let _ = self.remove_vertex_report(x);
    }

    /// Like [`remove_vertex`](Self::remove_vertex), additionally
    /// returning the vertices that *entered* the skyline because of this
    /// removal (e.g. vertices that were dominated by `x`). Used by
    /// `NeiSkyTopkMCC` to feed new seeds into its lazy queue.
    ///
    /// Only a targeted set needs re-evaluation. For an alive `u ∉ N[x]`,
    /// `N_alive(u)` is unchanged and `x ∉ N_alive(u)`, so removing `x`
    /// from other closed neighborhoods can neither create nor break an
    /// inclusion `N(u) ⊆ N_alive[w]` — the only pairs at risk are those
    /// whose recorded witness `w` lost `x` from its *own* open
    /// neighborhood (mutuality can appear, voiding a larger-ID witness),
    /// i.e. `dominator[u] ∈ N(x)`, plus the vertices whose witness *was*
    /// `x`. Together with `N(x)` itself (whose neighborhoods did change)
    /// this is the full affected set.
    ///
    /// # Panics
    ///
    /// Panics if `x` was already removed.
    pub fn remove_vertex_report(&mut self, x: VertexId) -> Vec<VertexId> {
        assert!(self.alive[x as usize], "vertex {x} already removed");
        self.alive[x as usize] = false;
        self.alive_count -= 1;
        let mut affected: Vec<VertexId> = self
            .g
            .neighbors(x)
            .iter()
            .copied()
            .filter(|&u| self.alive[u as usize])
            .collect();
        let neighbor_of_x = |w: VertexId| self.g.has_edge(w, x);
        for u in 0..self.g.num_vertices() as VertexId {
            if !self.alive[u as usize] {
                continue;
            }
            let w = self.dominator[u as usize];
            if w != u && (w == x || neighbor_of_x(w)) {
                affected.push(u);
            }
        }
        affected.sort_unstable();
        affected.dedup();
        let mut newly_skyline = Vec::new();
        for &u in &affected {
            debug_assert!(self.alive[u as usize]);
            let was = self.dominator[u as usize] == u;
            self.recompute(u);
            if !was && self.dominator[u as usize] == u {
                newly_skyline.push(u);
            }
        }
        newly_skyline
    }

    /// Masked Definition 1: `N(u) ⊆ N[w]` over alive vertices.
    fn masked_included(&self, u: VertexId, w: VertexId) -> bool {
        self.g
            .neighbors(u)
            .iter()
            .filter(|&&x| self.alive[x as usize])
            .all(|&x| x == w || self.g.has_edge(w, x))
    }

    /// Masked Definition 2: does `w` dominate `u` in the residual graph?
    fn masked_dominates(&self, w: VertexId, u: VertexId) -> bool {
        if w == u || !self.alive[w as usize] {
            return false;
        }
        if !self.masked_included(u, w) {
            return false;
        }
        if self.masked_included(w, u) {
            w < u
        } else {
            true
        }
    }

    /// Exact status recomputation of one vertex.
    ///
    /// A dominator `w` of `u` satisfies `v ∈ N_alive[w]` — equivalently
    /// `w ∈ N_alive[v]` — for **every** alive neighbor `v` of `u`, so
    /// scanning the closed alive adjacency of a *single* such `v` covers
    /// all possible dominators; we pick the one of minimum (unmasked)
    /// degree to keep the scan short.
    fn recompute(&mut self, u: VertexId) {
        debug_assert!(self.alive[u as usize]);
        self.dominator[u as usize] = u;
        let vmin = self
            .g
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&v| self.alive[v as usize])
            .min_by_key(|&v| self.g.degree(v));
        let Some(vmin) = vmin else {
            return; // isolated: skyline by convention
        };
        self.round = self.round.wrapping_add(1);
        let round = self.round;
        for wi in 0..=self.g.degree(vmin) {
            let w = if wi == self.g.degree(vmin) {
                vmin
            } else {
                self.g.neighbors(vmin)[wi]
            };
            if w == u || !self.alive[w as usize] || self.stamp[w as usize] == round {
                continue;
            }
            self.stamp[w as usize] = round;
            if self.masked_dominates(w, u) {
                self.dominator[u as usize] = w;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::naive_skyline;
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};
    use nsky_graph::ops::induced_subgraph;
    use nsky_graph::prng::SplitMix64;

    /// Reference: skyline of the residual graph computed from scratch.
    fn residual_oracle(g: &Graph, removed: &[VertexId]) -> Vec<VertexId> {
        let keep: Vec<VertexId> = g.vertices().filter(|u| !removed.contains(u)).collect();
        let (sub, map) = induced_subgraph(g, &keep);
        naive_skyline(&sub)
            .skyline
            .iter()
            .map(|&u| map[u as usize])
            .collect()
    }

    #[test]
    fn tracks_oracle_under_random_removals() {
        for seed in 0..4 {
            let g = erdos_renyi(60, 0.1, seed);
            let mut dyn_sky = DynamicSkyline::new(&g);
            let mut rng = SplitMix64::new(seed * 7 + 1);
            let mut removed: Vec<VertexId> = Vec::new();
            for _ in 0..10 {
                let candidates: Vec<VertexId> =
                    g.vertices().filter(|&u| dyn_sky.is_alive(u)).collect();
                let x = candidates[rng.next_index(candidates.len())];
                dyn_sky.remove_vertex(x);
                removed.push(x);
                assert_eq!(
                    dyn_sky.skyline(),
                    residual_oracle(&g, &removed),
                    "seed {seed}, removed {removed:?}"
                );
            }
        }
    }

    #[test]
    fn tracks_oracle_on_power_law_graph() {
        let g = chung_lu_power_law(150, 2.7, 5.0, 3);
        let mut dyn_sky = DynamicSkyline::new(&g);
        // Remove the three highest-degree vertices — the most disruptive.
        let mut by_degree: Vec<VertexId> = g.vertices().collect();
        by_degree.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
        let mut removed = Vec::new();
        for &x in by_degree.iter().take(3) {
            dyn_sky.remove_vertex(x);
            removed.push(x);
            assert_eq!(dyn_sky.skyline(), residual_oracle(&g, &removed));
        }
        assert_eq!(dyn_sky.alive_count(), 147);
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_removal_panics() {
        let g = erdos_renyi(10, 0.3, 1);
        let mut d = DynamicSkyline::new(&g);
        d.remove_vertex(0);
        d.remove_vertex(0);
    }

    #[test]
    fn initial_state_matches_static_skyline() {
        let g = erdos_renyi(80, 0.06, 9);
        let d = DynamicSkyline::new(&g);
        assert_eq!(d.skyline(), naive_skyline(&g).skyline);
        assert_eq!(d.alive_count(), 80);
    }
}
