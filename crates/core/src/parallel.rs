//! A chunked parallel variant of the refine phase (extension beyond the
//! paper; the per-candidate checks are read-only and embarrassingly
//! parallel).

use crate::budget::{BudgetTicker, ExecutionBudget};
use crate::exec::{self, ExecutionContext};
use crate::filter_phase::filter_phase;
use crate::obs::{record_skyline_stats, Recorder};
use crate::refine::RefineConfig;
use crate::result::{SkylineResult, SkylineStats};
use crate::snapshot::{
    Checkpointer, KernelId, KernelState, Reader, RecoveryError, ResumableRun, Snapshot, Writer,
};
use nsky_bloom::{BloomConfig, NeighborhoodFilters};
use nsky_graph::{Graph, VertexId};

/// Per-candidate outcome of a worker's refine scan.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// The scan did not finish before the budget tripped.
    Unverified,
    /// Scan finished; no dominator found — a true skyline member.
    Skyline,
    /// Scan finished; dominated by the carried witness.
    DominatedBy(VertexId),
}

impl Verdict {
    /// The wire tag used by [`ParState`].
    fn tag(self) -> u32 {
        match self {
            Verdict::Unverified => PAR_UNVERIFIED,
            Verdict::Skyline => PAR_SKYLINE,
            Verdict::DominatedBy(w) => w,
        }
    }

    /// Inverse of [`Verdict::tag`].
    fn from_tag(tag: u32) -> Verdict {
        match tag {
            PAR_UNVERIFIED => Verdict::Unverified,
            PAR_SKYLINE => Verdict::Skyline,
            w => Verdict::DominatedBy(w),
        }
    }
}

/// Computes the neighborhood skyline with the refine phase split across
/// `threads` OS threads.
///
/// Unlike the sequential [`crate::filter_refine_sky`], workers do not
/// observe each other's refine-time dominator updates; they skip a
/// potential dominator `w` only when `w` failed the *filter phase*. This
/// is still sound (every dominated vertex has a skyline dominator, and
/// the skyline is contained in the candidate set) and the resulting
/// skyline is identical — the skyline of a graph is unique.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::chung_lu_power_law;
/// use nsky_skyline::{filter_refine_sky, filter_refine_sky_par, RefineConfig};
///
/// let g = chung_lu_power_law(1_000, 2.8, 6.0, 3);
/// let cfg = RefineConfig::default();
/// assert_eq!(
///     filter_refine_sky_par(&g, &cfg, 4).skyline,
///     filter_refine_sky(&g, &cfg).skyline,
/// );
/// ```
pub fn filter_refine_sky_par(g: &Graph, cfg: &RefineConfig, threads: usize) -> SkylineResult {
    filter_refine_sky_par_with(g, cfg, threads, &mut ExecutionContext::new()).outcome
}

/// The one entry point: [`filter_refine_sky_par`] under an
/// [`ExecutionContext`] — budget, cancellation, checkpoint/resume and
/// observability in any combination, the budget shared by all worker
/// threads. The first worker that observes an exhausted budget publishes
/// the sticky trip; every other worker stops within one check interval.
/// After a trip the skyline holds exactly the candidates some worker
/// fully verified (a sound subset of the true skyline — which candidates
/// those are depends on thread scheduling). The recorder sees one
/// `"refine_par"` span around the whole run plus a bulk flush of the
/// run's [`SkylineStats`] at exit; workers never touch it.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn filter_refine_sky_par_with(
    g: &Graph,
    cfg: &RefineConfig,
    threads: usize,
    ctx: &mut ExecutionContext<'_>,
) -> ResumableRun<SkylineResult> {
    assert!(threads > 0, "need at least one worker thread");
    let rec = ctx.effective_recorder();
    rec.phase_start("refine_par");
    let run = exec::drive(ctx, g.fingerprint(), ParState::fresh, |state, budget| {
        let (result, state) = parallel_leg(g, cfg, threads, budget, state);
        let completion = result.completion;
        (result, state, completion)
    });
    rec.phase_end("refine_par");
    record_skyline_stats(rec, &run.outcome.stats);
    run
}

/// Deprecated twin: use [`filter_refine_sky_par_with`] with a
/// budget-armed context.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn filter_refine_sky_par_budgeted(
    g: &Graph,
    cfg: &RefineConfig,
    threads: usize,
    budget: &ExecutionBudget,
) -> SkylineResult {
    filter_refine_sky_par_with(g, cfg, threads, &mut ExecutionContext::new().budget(budget)).outcome
}

/// Deprecated twin: use [`filter_refine_sky_par_with`] with a
/// recorder-armed context.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn filter_refine_sky_par_recorded(
    g: &Graph,
    cfg: &RefineConfig,
    threads: usize,
    rec: &dyn Recorder,
) -> SkylineResult {
    filter_refine_sky_par_with(g, cfg, threads, &mut ExecutionContext::new().recorder(rec)).outcome
}

/// Resume state of an interrupted [`filter_refine_sky_par`] run: one
/// verdict per filter-phase candidate. Each verdict is a pure function
/// of the graph, config and candidate ([`refine_one`] reads no shared
/// refine-time state), so a resumed run recomputes only the
/// still-unverified entries and the merged verdict array — hence the
/// final dominator and skyline — is byte-identical regardless of which
/// workers verified what before the trip.
struct ParState {
    /// `u32::MAX` = unverified, `u32::MAX - 1` = skyline, anything else
    /// = dominated by that witness (vertex ids stay far below the tags).
    verdicts: Vec<u32>,
}

const PAR_UNVERIFIED: u32 = u32::MAX;
const PAR_SKYLINE: u32 = u32::MAX - 1;

impl ParState {
    fn fresh() -> ParState {
        ParState {
            verdicts: Vec::new(),
        }
    }
}

impl KernelState for ParState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::ParallelRefine;

    fn encode(&self, w: &mut Writer) {
        w.put_u32_slice(&self.verdicts);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(ParState {
            verdicts: r.take_u32_vec()?,
        })
    }
}

/// Deprecated twin: use [`filter_refine_sky_par_with`] with a context
/// arming budget, resume and checkpoint sink together (see
/// [`crate::snapshot`] for the contract).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn filter_refine_sky_par_resumable<'a>(
    g: &Graph,
    cfg: &RefineConfig,
    threads: usize,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<SkylineResult> {
    filter_refine_sky_par_with(
        g,
        cfg,
        threads,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}

fn parallel_leg(
    g: &Graph,
    cfg: &RefineConfig,
    threads: usize,
    budget: &ExecutionBudget,
    state: ParState,
) -> (SkylineResult, ParState) {
    let n = g.num_vertices();
    let filter = filter_phase(g);
    let mut stats: SkylineStats = filter.seed_stats();

    let bloom_cfg = BloomConfig::for_max_degree(g.max_degree(), cfg.bloom_bits_per_element);
    let estimate = filter.candidates.len() * (bloom_cfg.bits / 8 + 4) + n * 4 + threads * n * 4;
    if let Some(status) = budget.charge(estimate) {
        let result = SkylineResult::partial(
            Vec::new(),
            filter.dominator,
            Some(filter.candidates),
            stats,
            status,
        );
        return (result, state);
    }
    let filters = NeighborhoodFilters::build(g, filter.candidates.iter().copied(), bloom_cfg);
    stats.peak_bytes = filters.size_bytes() + n * 4 + threads * n * 4;

    let candidates = &filter.candidates;
    let is_candidate = &filter.dominator; // frozen: dominator[w] == w ⟺ w ∈ C
    let chunk = candidates.len().div_ceil(threads).max(1);
    let mut verdicts: Vec<Verdict> = if state.verdicts.len() == candidates.len() {
        state
            .verdicts
            .iter()
            .map(|&t| Verdict::from_tag(t))
            .collect()
    } else {
        vec![Verdict::Unverified; candidates.len()]
    };

    std::thread::scope(|scope| {
        let filters = &filters;
        for (slice, out) in candidates.chunks(chunk).zip(verdicts.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut seen: Vec<u32> = vec![u32::MAX; n];
                let mut ticker = budget.ticker();
                for (i, &u) in slice.iter().enumerate() {
                    if out[i] != Verdict::Unverified {
                        continue; // verified before the last trip
                    }
                    if ticker.check().is_some() {
                        break; // leave the rest of the chunk Unverified
                    }
                    out[i] = refine_one(g, filters, is_candidate, cfg, &mut seen, &mut ticker, u);
                    if out[i] == Verdict::Unverified {
                        break; // tripped mid-scan
                    }
                }
            });
        }
    });

    let completion = budget.status();
    let mut dominator = filter.dominator.clone();
    for (i, &u) in candidates.iter().enumerate() {
        if let Verdict::DominatedBy(w) = verdicts[i] {
            dominator[u as usize] = w;
        }
    }
    let state = ParState {
        verdicts: verdicts.iter().map(|v| v.tag()).collect(),
    };
    if completion.is_complete() {
        let result = SkylineResult::from_dominators(dominator, Some(filter.candidates), stats);
        return (result, state);
    }
    let verified = candidates
        .iter()
        .zip(&verdicts)
        .filter(|&(_, v)| *v == Verdict::Skyline)
        .map(|(&u, _)| u)
        .collect();
    let result = SkylineResult::partial(
        verified,
        dominator,
        Some(filter.candidates),
        stats,
        completion,
    );
    (result, state)
}

/// Pure per-candidate check: [`Verdict::DominatedBy`] the first 2-hop
/// vertex that dominates `u` (strictly, or a smaller-ID twin),
/// [`Verdict::Skyline`] if the scan completes without one, or
/// [`Verdict::Unverified`] if the budget trips mid-scan.
// HOT: per-candidate scan executed across the worker pool — shared-state
// writes are stamp-array updates only, never heap growth.
#[allow(clippy::too_many_arguments)]
fn refine_one(
    g: &Graph,
    filters: &NeighborhoodFilters,
    is_candidate: &[VertexId],
    cfg: &RefineConfig,
    seen: &mut [u32],
    ticker: &mut BudgetTicker<'_>,
    u: VertexId,
) -> Verdict {
    let du = g.degree(u);
    if du == 0 {
        return Verdict::Skyline;
    }
    let word_prefilter = cfg.use_word_prefilter && du >= filters.words_per_filter();
    let round = u;
    let nbrs = g.neighbors(u);
    let scan_vs: &[VertexId] = if cfg.scan_min_neighbor {
        let mut best = 0usize;
        for i in 1..nbrs.len() {
            if ticker.check().is_some() {
                return Verdict::Unverified;
            }
            if g.degree(nbrs[i]) < g.degree(nbrs[best]) {
                best = i;
            }
        }
        &nbrs[best..=best]
    } else {
        nbrs
    };
    for &v in scan_vs {
        for &w in g.neighbors(v) {
            if ticker.check().is_some() {
                return Verdict::Unverified;
            }
            if w == u {
                continue;
            }
            if cfg.dedup_two_hop {
                if seen[w as usize] == round {
                    continue;
                }
                seen[w as usize] = round;
            }
            if g.degree(w) < du || is_candidate[w as usize] != w {
                continue;
            }
            if word_prefilter && !filters.filter_subset(u, w) {
                continue;
            }
            let mut dominated = true;
            for &x in g.neighbors(u) {
                if ticker.check().is_some() {
                    return Verdict::Unverified;
                }
                if x == w || x == v {
                    continue;
                }
                if !filters.maybe_contains(w, x) || !g.has_edge(w, x) {
                    dominated = false;
                    break;
                }
            }
            if !dominated {
                continue;
            }
            if g.degree(w) == du {
                if w < u {
                    return Verdict::DominatedBy(w);
                }
            } else {
                return Verdict::DominatedBy(w);
            }
        }
    }
    Verdict::Skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::filter_refine_sky;
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};

    #[test]
    fn agrees_with_sequential() {
        let cfg = RefineConfig::default();
        for seed in 0..4 {
            let g = chung_lu_power_law(1_500, 2.7, 6.0, seed);
            let seq = filter_refine_sky(&g, &cfg);
            for threads in [1, 2, 4, 7] {
                let par = filter_refine_sky_par(&g, &cfg, threads);
                assert_eq!(par.skyline, seq.skyline, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn dominator_witnesses_are_valid() {
        let g = erdos_renyi(300, 0.04, 9);
        let r = filter_refine_sky_par(&g, &RefineConfig::default(), 3);
        for u in g.vertices() {
            let o = r.dominator[u as usize];
            if o != u {
                assert!(crate::domination::dominates(&g, o, u));
            }
        }
    }

    #[test]
    fn trivial_graphs() {
        let cfg = RefineConfig::default();
        assert!(filter_refine_sky_par(&Graph::empty(0), &cfg, 2).is_empty());
        assert_eq!(filter_refine_sky_par(&Graph::empty(5), &cfg, 2).len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        filter_refine_sky_par(&Graph::empty(1), &RefineConfig::default(), 0);
    }
}
