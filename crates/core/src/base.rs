//! `BaseSky` — the paper's Algorithm 1, adapted from Brandes et al.'s
//! positional-dominance computation.
//!
//! Two variants are provided:
//!
//! * [`base_sky`] — **faithful** to the printed pseudo-code: the
//!   `O(u)`-updated-at-most-once rule prevents re-*writing* the
//!   dominator, but the 2-hop counting scan runs to completion (only the
//!   innermost loop breaks on the first strict dominator), giving the
//!   full `O(m·dmax)` of Theorem 1. This is the baseline every paper
//!   figure compares against.
//! * [`base_sky_early_exit`] — our improvement: the whole scan of `u`
//!   aborts as soon as `u` is known dominated. On leaf-heavy graphs this
//!   closes much of the gap to `FilterRefineSky` (quantified by the
//!   `ablation_early_exit` bench and discussed in EXPERIMENTS.md).

use crate::budget::{Completion, ExecutionBudget};
use crate::exec::{self, ExecutionContext};
use crate::obs::{record_skyline_stats, Recorder};
use crate::result::{SkylineResult, SkylineStats};
use crate::snapshot::{
    Checkpointer, KernelId, KernelState, Reader, RecoveryError, ResumableRun, Snapshot, Writer,
};
use nsky_graph::{Graph, VertexId};

/// How the counting scan terminates once a vertex is resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ScanMode {
    /// Paper-faithful: finish the 2-hop scan regardless.
    Faithful,
    /// Abort the scan of `u` once `u` is known dominated.
    EarlyExit,
}

/// Computes the neighborhood skyline with the baseline algorithm
/// (paper-faithful scan; see the module docs).
///
/// For each still-unresolved vertex `u` it scans the 2-hop neighborhood,
/// counting for every `w` the overlap `T(w) = |N(u) ∩ N[w]|` (each
/// `v ∈ N(u)` contributes `+1` to all `w ∈ N[v] \ {u}`, since
/// `w ∈ N[v] ⟺ v ∈ N[w]`). When `T(w)` reaches `deg(u)` we have
/// `N(u) ⊆ N[w]`:
///
/// * `deg(w) > deg(u)` — strict domination: `O(u) ← w` if still unset
///   (the "at most once" rule);
/// * `deg(w) == deg(u)` — mutual inclusion (see `domination` Fact 3):
///   the smaller ID dominates; a larger-ID twin `w` is marked dominated
///   by `u` so its own scan can be skipped later.
///
/// Skipping the scan of already-dominated vertices is sound: a vertex's
/// own status is always decided during its *own* scan (or by a
/// smaller-ID twin whose scan ran earlier), never delegated forward.
///
/// `O(m · dmax)` time, `O(n + m)` space (Theorem 1).
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::star;
/// use nsky_skyline::base_sky;
///
/// let r = base_sky(&star(5));
/// assert_eq!(r.skyline, vec![0]); // the hub dominates every leaf
/// ```
pub fn base_sky(g: &Graph) -> SkylineResult {
    base_sky_with(g, &mut ExecutionContext::new()).outcome
}

/// [`base_sky`] with the scan of a vertex aborted as soon as the vertex
/// is known dominated — a strict improvement over the printed
/// Algorithm 1 (same output, measured in `ablation_early_exit`).
pub fn base_sky_early_exit(g: &Graph) -> SkylineResult {
    base_sky_impl(g, ScanMode::EarlyExit, &ExecutionBudget::unlimited())
}

/// The one entry point: [`base_sky`] under an [`ExecutionContext`] —
/// budget, cancellation, checkpoint/resume and observability in any
/// combination. Opens one `"scan"` phase span around the counting scan
/// and bulk-flushes the run's [`SkylineStats`] at exit; the hot loop
/// itself never touches the recorder. With an inert context the outcome
/// is byte-identical to [`base_sky`]; after a trip it is partial (scans
/// run in increasing vertex order, so the reported skyline is exactly
/// the verified prefix — a sound subset of the true skyline) and
/// [`ResumableRun::snapshot`] carries the resume state.
pub fn base_sky_with(g: &Graph, ctx: &mut ExecutionContext<'_>) -> ResumableRun<SkylineResult> {
    let n = g.num_vertices();
    let rec = ctx.effective_recorder();
    rec.phase_start("scan");
    let run = exec::drive(
        ctx,
        g.fingerprint(),
        || BaseSkyState::fresh(n),
        |mut state, budget| {
            if state.dominator.len() != n || state.cursor as usize > n {
                state = BaseSkyState::fresh(n);
            }
            let (result, state) = base_sky_leg(g, ScanMode::Faithful, budget, state);
            let completion = result.completion;
            (result, state, completion)
        },
    );
    rec.phase_end("scan");
    record_skyline_stats(rec, &run.outcome.stats);
    run
}

/// Deprecated twin: use [`base_sky_with`] with a recorder-armed context.
pub fn base_sky_recorded(g: &Graph, rec: &dyn Recorder) -> SkylineResult {
    base_sky_with(g, &mut ExecutionContext::new().recorder(rec)).outcome
}

/// Deprecated twin: use [`base_sky_with`] with a budget-armed context.
/// With an unlimited budget the output is byte-identical to
/// [`base_sky`]; after a trip the result is the sound verified prefix.
pub fn base_sky_budgeted(g: &Graph, budget: &ExecutionBudget) -> SkylineResult {
    base_sky_with(g, &mut ExecutionContext::new().budget(budget)).outcome
}

/// Resume state of an interrupted [`base_sky`] run: the dominator array
/// as it stood before the first unfinished scan, plus that scan's vertex
/// (the cursor). An in-progress scan's dominator writes are rolled back
/// before snapshotting, so resuming re-runs the cursor's scan from
/// pristine state — exactly what the uninterrupted run did.
struct BaseSkyState {
    dominator: Vec<VertexId>,
    cursor: VertexId,
}

impl BaseSkyState {
    fn fresh(n: usize) -> BaseSkyState {
        BaseSkyState {
            dominator: (0..n as VertexId).collect(),
            cursor: 0,
        }
    }
}

impl KernelState for BaseSkyState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::BaseSky;

    fn encode(&self, w: &mut Writer) {
        w.put_u32_slice(&self.dominator);
        w.put_u32(self.cursor);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(BaseSkyState {
            dominator: r.take_u32_vec()?,
            cursor: r.take_u32()?,
        })
    }
}

/// Deprecated twin: use [`base_sky_with`] with a context arming budget,
/// resume and checkpoint sink together. Trip → snapshot → resume is
/// byte-identical to the uninterrupted run (`tests/snapshot_faults.rs`).
pub fn base_sky_resumable<'a>(
    g: &Graph,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<SkylineResult> {
    base_sky_with(
        g,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}

fn base_sky_impl(g: &Graph, mode: ScanMode, budget: &ExecutionBudget) -> SkylineResult {
    let n = g.num_vertices();
    base_sky_leg(g, mode, budget, BaseSkyState::fresh(n)).0
}

fn base_sky_leg(
    g: &Graph,
    mode: ScanMode,
    budget: &ExecutionBudget,
    state: BaseSkyState,
) -> (SkylineResult, BaseSkyState) {
    let n = g.num_vertices();
    let mut stats = SkylineStats {
        candidate_count: n,
        peak_bytes: n * (4 + 4 + 4),
        ..SkylineStats::default()
    };
    if let Some(status) = budget.charge(n * (4 + 4 + 4)) {
        // Refused before the counting arrays were built: nothing beyond
        // the resumed prefix is verified.
        let verified = (0..state.cursor)
            .filter(|&v| state.dominator[v as usize] == v)
            .collect();
        let result = SkylineResult::partial(verified, state.dominator.clone(), None, stats, status);
        return (result, state);
    }
    let BaseSkyState {
        mut dominator,
        cursor,
    } = state;
    // Timestamped counting array: T(w) = count[w] when stamp[w] == round.
    let mut count: Vec<u32> = vec![0; n];
    let mut stamp: Vec<u32> = vec![u32::MAX; n];
    let mut ticker = budget.ticker();
    let mut tripped: Option<Completion> = None;
    let mut first_unverified = n as VertexId;
    // Dominator writes of the in-progress scan, for rollback at a trip
    // (a scan may forward-mark larger twins before it finishes; undoing
    // them lets a resumed run replay the scan from pristine state).
    let mut undo: Vec<(usize, VertexId)> = Vec::new();

    'all: for u in cursor..n as VertexId {
        if dominator[u as usize] != u {
            continue; // already resolved by a smaller-ID twin
        }
        let du = g.degree_u32(u);
        if du == 0 {
            continue; // isolated: skyline by convention
        }
        let round = u; // vertex id doubles as the stamp for its scan
        undo.clear();
        'scan: for &v in g.neighbors(u) {
            for w in g.neighbors(v).iter().copied().chain(std::iter::once(v)) {
                if let Some(status) = ticker.check() {
                    tripped = Some(status);
                    first_unverified = u; // u's scan did not finish
                    for &(i, old) in undo.iter().rev() {
                        dominator[i] = old;
                    }
                    break 'all;
                }
                if w == u {
                    continue;
                }
                stats.adjacency_probes += 1;
                let wi = w as usize;
                if stamp[wi] != round {
                    stamp[wi] = round;
                    count[wi] = 0;
                }
                count[wi] += 1;
                if count[wi] == du {
                    // N(u) ⊆ N[w].
                    stats.pair_tests += 1;
                    let dw = g.degree_u32(w);
                    debug_assert!(dw >= du, "inclusion implies deg(w) ≥ deg(u)");
                    if dw == du {
                        // Mutual twins: smaller ID dominates (Def. 2(2)).
                        if w < u {
                            if dominator[u as usize] == u {
                                undo.push((u as usize, u));
                                dominator[u as usize] = w;
                                if mode == ScanMode::EarlyExit {
                                    break 'scan;
                                }
                            }
                        } else if dominator[wi] == w {
                            undo.push((wi, w));
                            dominator[wi] = u;
                        }
                    } else if dominator[u as usize] == u {
                        undo.push((u as usize, u));
                        dominator[u as usize] = w;
                        match mode {
                            ScanMode::EarlyExit => break 'scan,
                            // The paper's line 17 `break` leaves only the
                            // innermost loop.
                            ScanMode::Faithful => break,
                        }
                    }
                }
            }
        }
    }
    match tripped {
        None => {
            let result = SkylineResult::from_dominators(dominator.clone(), None, stats);
            let state = BaseSkyState {
                dominator,
                cursor: n as VertexId,
            };
            (result, state)
        }
        Some(status) => {
            // Vertices below the first unscanned one with their own
            // scan finished and no dominator found are true skyline
            // members (twin forward-marks never clear a fixed point).
            let verified = (0..first_unverified)
                .filter(|&v| dominator[v as usize] == v)
                .collect();
            let result = SkylineResult::partial(verified, dominator.clone(), None, stats, status);
            let state = BaseSkyState {
                dominator,
                cursor: first_unverified,
            };
            (result, state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::naive_skyline;
    use nsky_graph::generators::special::{clique, complete_binary_tree, cycle, path, star};
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi, planted_partition};

    fn assert_matches_oracle(g: &Graph, label: &str) {
        let truth = naive_skyline(g);
        for (fast, variant) in [
            (base_sky(g), "faithful"),
            (base_sky_early_exit(g), "early-exit"),
        ] {
            assert_eq!(fast.skyline, truth.skyline, "{label} ({variant})");
            // Dominator witnesses must be genuine dominators.
            for u in g.vertices() {
                let o = fast.dominator[u as usize];
                if o != u {
                    assert!(
                        crate::domination::dominates(g, o, u),
                        "{label} ({variant}): bogus witness {o} for {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_oracle_on_special_families() {
        assert_matches_oracle(&clique(8), "clique");
        assert_matches_oracle(&path(9), "path");
        assert_matches_oracle(&cycle(9), "cycle");
        assert_matches_oracle(&star(9), "star");
        assert_matches_oracle(&complete_binary_tree(4), "tree");
    }

    #[test]
    fn fig2_sizes() {
        assert_eq!(base_sky(&clique(10)).len(), 1);
        assert_eq!(base_sky(&cycle(10)).len(), 10);
        assert_eq!(base_sky(&path(10)).len(), 8);
        // Complete binary tree: skyline = internal vertices.
        let levels = 4;
        let t = complete_binary_tree(levels);
        let r = base_sky(&t);
        assert_eq!(
            r.len(),
            nsky_graph::generators::special::binary_tree_internal_count(levels)
        );
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..8 {
            let g = erdos_renyi(90, 0.07, seed);
            assert_matches_oracle(&g, &format!("er seed {seed}"));
        }
        for seed in 0..4 {
            let g = chung_lu_power_law(150, 2.7, 5.0, seed);
            assert_matches_oracle(&g, &format!("cl seed {seed}"));
        }
        let g = planted_partition(80, 4, 0.5, 0.02, 1);
        assert_matches_oracle(&g, "planted partition");
    }

    #[test]
    fn early_exit_probes_no_more_than_faithful() {
        let g = chung_lu_power_law(500, 2.7, 6.0, 9);
        let faithful = base_sky(&g);
        let early = base_sky_early_exit(&g);
        assert_eq!(faithful.skyline, early.skyline);
        assert!(early.stats.adjacency_probes <= faithful.stats.adjacency_probes);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        assert!(base_sky(&Graph::empty(0)).is_empty());
        assert_eq!(base_sky(&Graph::empty(5)).len(), 5);
        let single_edge = Graph::from_edges(2, [(0, 1)]);
        assert_eq!(base_sky(&single_edge).skyline, vec![0]);
    }

    #[test]
    fn stats_are_populated() {
        let g = erdos_renyi(60, 0.1, 2);
        let r = base_sky(&g);
        assert!(r.stats.adjacency_probes > 0);
        assert_eq!(r.stats.candidate_count, 60);
        assert!(r.stats.peak_bytes > 0);
        assert!(r.candidates.is_none());
    }
}
