//! Result and instrumentation types shared by every skyline algorithm.

use crate::budget::Completion;
use nsky_graph::VertexId;

/// Instrumentation counters collected while computing a skyline.
///
/// The benchmark harness prints these next to wall-clock numbers so the
/// *mechanism* of each speedup (fewer pair tests, bloom rejections before
/// adjacency probes) is visible, mirroring the paper's discussion of
/// Exp-1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkylineStats {
    /// Ordered pairs `(u, w)` for which a domination check was started.
    pub pair_tests: u64,
    /// Pairs rejected by the whole-filter word comparison
    /// (`BF(u) & BF(w) != BF(u)`, line 14 of Algorithm 3).
    pub bf_word_rejects: u64,
    /// Per-neighbor `BFcheck` rejections (bit absent ⇒ exact negative).
    pub bf_bit_rejects: u64,
    /// Exact adjacency probes performed (`NBRcheck` + merge steps).
    pub adjacency_probes: u64,
    /// Bloom-filter containment queries issued (word prefilters plus
    /// per-neighbor bit probes). Always equals
    /// `bloom_hits + bf_word_rejects + bf_bit_rejects`.
    pub bloom_queries: u64,
    /// Bloom queries that answered "maybe contained" (the positive
    /// outcomes; negatives are exact, split across the reject counters).
    pub bloom_hits: u64,
    /// Size of the candidate set `C` (equals `n` for algorithms without a
    /// filter phase).
    pub candidate_count: usize,
    /// Estimated peak resident bytes of algorithm-owned state
    /// (excludes the input graph; see [`crate::memory`]).
    pub peak_bytes: usize,
}

/// Output of a skyline computation.
#[derive(Clone, Debug)]
pub struct SkylineResult {
    /// Skyline vertices, sorted ascending.
    pub skyline: Vec<VertexId>,
    /// The paper's `O(*)` array: `dominator[u] == u` iff `u` is in the
    /// skyline, otherwise one vertex that dominates `u`.
    pub dominator: Vec<VertexId>,
    /// The candidate set `C` when a filter phase ran (`None` otherwise),
    /// sorted ascending.
    pub candidates: Option<Vec<VertexId>>,
    /// Instrumentation counters.
    pub stats: SkylineStats,
    /// How the run ended. Anything other than [`Completion::Complete`]
    /// marks a partial result: `skyline` holds only the candidates
    /// *verified* before the budget tripped (a sound subset of the true
    /// skyline), while `dominator` may still hold unverified fixed
    /// points — so [`SkylineResult::contains`] and
    /// [`SkylineResult::membership_mask`] over-approximate membership on
    /// partial results.
    pub completion: Completion,
}

impl SkylineResult {
    /// Assembles the result from a finished dominator array.
    pub(crate) fn from_dominators(
        dominator: Vec<VertexId>,
        candidates: Option<Vec<VertexId>>,
        stats: SkylineStats,
    ) -> Self {
        let skyline = dominator
            .iter()
            .enumerate()
            .filter(|&(u, &o)| o == u as VertexId)
            .map(|(u, _)| u as VertexId)
            .collect();
        SkylineResult {
            skyline,
            dominator,
            candidates,
            stats,
            completion: Completion::Complete,
        }
    }

    /// Assembles an anytime partial result after a budget trip: only the
    /// explicitly listed `verified` vertices (those whose domination scan
    /// finished before the trip) are reported as skyline members, even
    /// though unverified candidates may still be fixed points of
    /// `dominator`.
    pub(crate) fn partial(
        verified: Vec<VertexId>,
        dominator: Vec<VertexId>,
        candidates: Option<Vec<VertexId>>,
        stats: SkylineStats,
        completion: Completion,
    ) -> Self {
        SkylineResult {
            skyline: verified,
            dominator,
            candidates,
            stats,
            completion,
        }
    }

    /// Whether `u` belongs to the skyline.
    #[inline]
    pub fn contains(&self, u: VertexId) -> bool {
        self.dominator[u as usize] == u
    }

    /// Skyline membership as a boolean mask (index = vertex id).
    pub fn membership_mask(&self) -> Vec<bool> {
        self.dominator
            .iter()
            .enumerate()
            .map(|(u, &o)| o == u as VertexId)
            .collect()
    }

    /// `|R|`.
    pub fn len(&self) -> usize {
        self.skyline.len()
    }

    /// Whether the skyline is empty (only for the 0-vertex graph).
    pub fn is_empty(&self) -> bool {
        self.skyline.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dominators_extracts_fixed_points() {
        let r = SkylineResult::from_dominators(vec![0, 0, 2, 2], None, SkylineStats::default());
        assert_eq!(r.skyline, vec![0, 2]);
        assert!(r.contains(0));
        assert!(!r.contains(1));
        assert_eq!(r.membership_mask(), vec![true, false, true, false]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.completion, Completion::Complete);
    }

    #[test]
    fn partial_reports_only_verified_vertices() {
        // Vertex 2 is a fixed point of the dominator array but was not
        // verified before the (simulated) trip, so it is excluded.
        let r = SkylineResult::partial(
            vec![0],
            vec![0, 0, 2, 2],
            None,
            SkylineStats::default(),
            Completion::DeadlineExceeded,
        );
        assert_eq!(r.skyline, vec![0]);
        assert!(r.contains(2), "mask over-approximates on partial results");
        assert_eq!(r.completion, Completion::DeadlineExceeded);
    }

    #[test]
    fn empty_result() {
        let r = SkylineResult::from_dominators(Vec::new(), None, SkylineStats::default());
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
