//! # nsky-skyline
//!
//! Neighborhood-skyline computation on graphs — a Rust implementation of
//! *"Neighborhood Skyline on Graphs: Concepts, Algorithms and
//! Applications"* (ICDE 2023).
//!
//! A vertex `u` **dominates** `v` (`v ≤ u`) when `N(v) ⊆ N[u]` and the
//! reverse inclusion fails; mutual inclusion (*twins*) is broken by vertex
//! ID — the smaller ID dominates. The **neighborhood skyline** `R` is the
//! set of vertices dominated by no other vertex.
//!
//! ## Algorithms
//!
//! | function | paper | complexity |
//! |---|---|---|
//! | [`base_sky`] | Algorithm 1 (`BaseSky`) | `O(m·dmax)` time, `O(n + m)` space |
//! | [`filter_phase`] | Algorithm 2 (`FilterPhase`) | near-`O(m)` time (see module docs) |
//! | [`filter_refine_sky`] | Algorithm 3 (`FilterRefineSky`) | `O(m + dmax·Σ_{u∈C} deg(u)²)` |
//! | [`two_hop_sky`] | `Base2Hop` baseline | materializes all 2-hop lists |
//! | [`cset_sky`] | `BaseCSet` baseline | `O(dmax·Σ_{u∈C} deg(u))` |
//! | [`oracle::naive_skyline`] | testing oracle | `O(n²·dmax)` |
//! | [`approx::approx_sky`] | ε-approximate skyline (paper future work) | `O(m·dmax)` |
//!
//! ## Operational semantics
//!
//! Following the paper, domination is evaluated against 2-hop
//! neighborhoods. For every vertex with at least one neighbor this equals
//! the mathematical definition (a dominator of a non-isolated vertex is
//! necessarily within two hops); **isolated vertices are skyline members
//! by convention**, although the literal Definition 2 would let any
//! non-isolated vertex dominate them. See [`domination`] for proofs of the
//! facts the algorithms rely on (transitivity of the vicinal preorder,
//! equal-degree inclusion ⇒ mutual inclusion).
//!
//! ## Quick start
//!
//! ```
//! use nsky_graph::Graph;
//! use nsky_skyline::{base_sky, filter_refine_sky, RefineConfig};
//!
//! let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]);
//! let fast = filter_refine_sky(&g, &RefineConfig::default());
//! let slow = base_sky(&g);
//! assert_eq!(fast.skyline, slow.skyline);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
mod base;
pub mod budget;
mod cset;
pub mod domination;
pub mod dynamic;
pub mod exec;
mod filter_phase;
pub mod incremental;
pub mod memory;
pub mod obs;
pub mod oracle;
mod parallel;
mod refine;
mod result;
pub mod snapshot;
mod two_hop;

pub use base::{
    base_sky, base_sky_budgeted, base_sky_early_exit, base_sky_recorded, base_sky_resumable,
    base_sky_with,
};
pub use budget::{Completion, ExecutionBudget};
pub use cset::cset_sky;
pub use dynamic::{BatchStats, MutableSkyline, UpdateOutcome};
pub use exec::ExecutionContext;
pub use filter_phase::{filter_phase, FilterOutcome};
pub use obs::{Counter, CountingRecorder, NoopRecorder, Recorder, RunReport};
pub use parallel::{
    filter_refine_sky_par, filter_refine_sky_par_budgeted, filter_refine_sky_par_recorded,
    filter_refine_sky_par_resumable, filter_refine_sky_par_with,
};
pub use refine::{
    filter_refine_sky, filter_refine_sky_budgeted, filter_refine_sky_recorded,
    filter_refine_sky_resumable, filter_refine_sky_with, RefineConfig,
};
pub use result::{SkylineResult, SkylineStats};
pub use two_hop::two_hop_sky;
