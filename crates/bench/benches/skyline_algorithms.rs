//! Micro-benchmarks for the skyline algorithms (the Fig. 3 comparison at
//! micro scale). One group per dataset family; each algorithm is one
//! benchmark within the group. Runs on the std-only `nsky_bench::micro`
//! harness (DESIGN.md §3 dependency policy).

use nsky_bench::micro::Group;
use nsky_graph::generators::{affiliation_model, leafy_preferential};
use nsky_graph::Graph;
use nsky_setjoin::lc_join_skyline;
use nsky_skyline::{
    base_sky, base_sky_early_exit, cset_sky, filter_refine_sky, two_hop_sky, RefineConfig,
};

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("leafy-8k", leafy_preferential(8_000, 0.95, 1.5, 5, 42)),
        ("affiliation-8k", affiliation_model(8_000, 4, 8, 0.7, 42)),
    ]
}

fn main() {
    for (name, g) in graphs() {
        let mut group = Group::new(&format!("skyline/{name}"));
        group
            .sample_size(10)
            .bench("FilterRefineSky", || {
                filter_refine_sky(&g, &RefineConfig::default())
            })
            .bench("BaseSky", || base_sky(&g))
            .bench("BaseSkyEarlyExit", || base_sky_early_exit(&g))
            .bench("BaseCSet", || cset_sky(&g))
            .bench("Base2Hop", || two_hop_sky(&g))
            .bench("LC-Join", || lc_join_skyline(&g))
            .finish();
    }
}
