//! Criterion micro-benchmarks for the skyline algorithms (the Fig. 3
//! comparison at micro scale). One group per dataset family; each
//! algorithm is one benchmark function within the group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsky_graph::generators::{affiliation_model, leafy_preferential};
use nsky_graph::Graph;
use nsky_setjoin::lc_join_skyline;
use nsky_skyline::{
    base_sky, base_sky_early_exit, cset_sky, filter_refine_sky, two_hop_sky, RefineConfig,
};

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "leafy-8k",
            leafy_preferential(8_000, 0.95, 1.5, 5, 42),
        ),
        (
            "affiliation-8k",
            affiliation_model(8_000, 4, 8, 0.7, 42),
        ),
    ]
}

fn bench_skyline_algorithms(c: &mut Criterion) {
    for (name, g) in graphs() {
        let mut group = c.benchmark_group(format!("skyline/{name}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("FilterRefineSky"), |b| {
            b.iter(|| filter_refine_sky(&g, &RefineConfig::default()))
        });
        group.bench_function(BenchmarkId::from_parameter("BaseSky"), |b| {
            b.iter(|| base_sky(&g))
        });
        group.bench_function(BenchmarkId::from_parameter("BaseSkyEarlyExit"), |b| {
            b.iter(|| base_sky_early_exit(&g))
        });
        group.bench_function(BenchmarkId::from_parameter("BaseCSet"), |b| {
            b.iter(|| cset_sky(&g))
        });
        group.bench_function(BenchmarkId::from_parameter("Base2Hop"), |b| {
            b.iter(|| two_hop_sky(&g))
        });
        group.bench_function(BenchmarkId::from_parameter("LC-Join"), |b| {
            b.iter(|| lc_join_skyline(&g))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_skyline_algorithms);
criterion_main!(benches);
