//! Criterion benches for the application experiments: group centrality
//! maximization (Fig. 7/8), maximum clique (Table II) and top-k cliques
//! (Fig. 9), baseline vs skyline-pruned.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsky_centrality::greedy::{greedy_group, GreedyOptions};
use nsky_centrality::measure::{Closeness, Harmonic};
use nsky_centrality::neisky::{nei_sky_gc, nei_sky_gh};
use nsky_clique::{mc_brb, nei_sky_mc, top_k_cliques, TopkMode};
use nsky_graph::generators::{affiliation_model, leafy_preferential};

fn bench_gcm(c: &mut Criterion) {
    let g = leafy_preferential(2_000, 0.94, 1.5, 8, 7);
    let k = 10;
    let mut group = c.benchmark_group("gcm");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("Greedy++"), |b| {
        b.iter(|| greedy_group(&g, Closeness, k, &GreedyOptions::optimized()))
    });
    group.bench_function(BenchmarkId::from_parameter("NeiSkyGC"), |b| {
        b.iter(|| nei_sky_gc(&g, k))
    });
    group.finish();
}

fn bench_ghm(c: &mut Criterion) {
    let g = leafy_preferential(2_000, 0.94, 1.5, 8, 7);
    let k = 10;
    let mut group = c.benchmark_group("ghm");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("Greedy-H"), |b| {
        b.iter(|| greedy_group(&g, Harmonic, k, &GreedyOptions::optimized()))
    });
    group.bench_function(BenchmarkId::from_parameter("NeiSkyGH"), |b| {
        b.iter(|| nei_sky_gh(&g, k))
    });
    group.finish();
}

fn bench_max_clique(c: &mut Criterion) {
    let g = affiliation_model(3_000, 5, 9, 0.5, 7);
    let mut group = c.benchmark_group("max_clique");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("MC-BRB"), |b| {
        b.iter(|| mc_brb(&g))
    });
    group.bench_function(BenchmarkId::from_parameter("NeiSkyMC"), |b| {
        b.iter(|| nei_sky_mc(&g))
    });
    group.finish();
}

fn bench_topk_clique(c: &mut Criterion) {
    let g = affiliation_model(2_000, 5, 9, 0.5, 7);
    let mut group = c.benchmark_group("topk_clique");
    group.sample_size(10);
    for k in [1usize, 5] {
        group.bench_with_input(BenchmarkId::new("BaseTopkMCC", k), &k, |b, &k| {
            b.iter(|| top_k_cliques(&g, k, TopkMode::Base))
        });
        group.bench_with_input(BenchmarkId::new("NeiSkyTopkMCC", k), &k, |b, &k| {
            b.iter(|| top_k_cliques(&g, k, TopkMode::NeiSky))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gcm,
    bench_ghm,
    bench_max_clique,
    bench_topk_clique
);
criterion_main!(benches);
