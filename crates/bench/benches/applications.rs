//! Micro-benches for the application experiments: group centrality
//! maximization (Fig. 7/8), maximum clique (Table II) and top-k cliques
//! (Fig. 9), baseline vs skyline-pruned. Runs on the std-only
//! `nsky_bench::micro` harness.

use nsky_bench::micro::Group;
use nsky_centrality::greedy::{greedy_group, GreedyOptions};
use nsky_centrality::measure::{Closeness, Harmonic};
use nsky_centrality::neisky::{nei_sky_gc, nei_sky_gh};
use nsky_clique::{mc_brb, nei_sky_mc, top_k_cliques, TopkMode};
use nsky_graph::generators::{affiliation_model, leafy_preferential};

fn bench_gcm() {
    let g = leafy_preferential(2_000, 0.94, 1.5, 8, 7);
    let k = 10;
    let mut group = Group::new("gcm");
    group
        .sample_size(10)
        .bench("Greedy++", || {
            greedy_group(&g, Closeness, k, &GreedyOptions::optimized())
        })
        .bench("NeiSkyGC", || nei_sky_gc(&g, k))
        .finish();
}

fn bench_ghm() {
    let g = leafy_preferential(2_000, 0.94, 1.5, 8, 7);
    let k = 10;
    let mut group = Group::new("ghm");
    group
        .sample_size(10)
        .bench("Greedy-H", || {
            greedy_group(&g, Harmonic, k, &GreedyOptions::optimized())
        })
        .bench("NeiSkyGH", || nei_sky_gh(&g, k))
        .finish();
}

fn bench_max_clique() {
    let g = affiliation_model(3_000, 5, 9, 0.5, 7);
    let mut group = Group::new("max_clique");
    group
        .sample_size(10)
        .bench("MC-BRB", || mc_brb(&g))
        .bench("NeiSkyMC", || nei_sky_mc(&g))
        .finish();
}

fn bench_topk_clique() {
    let g = affiliation_model(2_000, 5, 9, 0.5, 7);
    let mut group = Group::new("topk_clique");
    group.sample_size(10);
    for k in [1usize, 5] {
        group.bench(&format!("BaseTopkMCC/{k}"), || {
            top_k_cliques(&g, k, TopkMode::Base)
        });
        group.bench(&format!("NeiSkyTopkMCC/{k}"), || {
            top_k_cliques(&g, k, TopkMode::NeiSky)
        });
    }
    group.finish();
}

fn main() {
    bench_gcm();
    bench_ghm();
    bench_max_clique();
    bench_topk_clique();
}
