//! Micro-benches for the substrate layers: graph construction, BFS,
//! core decomposition, bloom filter operations and the containment join.
//! Runs on the std-only `nsky_bench::micro` harness.

use nsky_bench::micro::Group;
use nsky_bloom::{BloomConfig, NeighborhoodFilters};
use nsky_graph::degeneracy::core_decomposition;
use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};
use nsky_graph::traversal::Bfs;
use nsky_graph::Graph;
use nsky_setjoin::InvertedIndex;

fn bench_graph_build() {
    let edges: Vec<(u32, u32)> = erdos_renyi(20_000, 0.001, 7).edges().collect();
    let mut group = Group::new("substrate/graph");
    group
        .sample_size(20)
        .bench("csr-build-20k", || {
            Graph::from_edges(20_000, edges.iter().copied())
        })
        .finish();
}

fn bench_bfs() {
    let g = chung_lu_power_law(20_000, 2.7, 8.0, 7);
    let mut bfs = Bfs::new(g.num_vertices());
    let mut group = Group::new("substrate/bfs");
    group
        .sample_size(50)
        .bench("single-source-20k", || bfs.run(&g, 0))
        .finish();
}

fn bench_core_decomposition() {
    let g = chung_lu_power_law(20_000, 2.7, 8.0, 7);
    let mut group = Group::new("substrate/cores");
    group
        .sample_size(20)
        .bench("peeling-20k", || core_decomposition(&g))
        .finish();
}

fn bench_bloom() {
    let g = chung_lu_power_law(10_000, 2.7, 8.0, 7);
    let cfg = BloomConfig::for_max_degree(g.max_degree(), 2.0);
    let filters = NeighborhoodFilters::build(&g, g.vertices(), cfg);
    let mut group = Group::new("substrate/bloom");
    group
        .bench("build-10k", || {
            NeighborhoodFilters::build(&g, g.vertices(), cfg)
        })
        .bench("subset-probe", || {
            let mut hits = 0u32;
            for u in 0..64u32 {
                for w in 64..128u32 {
                    if filters.filter_subset(u, w) {
                        hits += 1;
                    }
                }
            }
            hits
        })
        .finish();
}

fn bench_containment_join() {
    let g = chung_lu_power_law(5_000, 2.7, 8.0, 7);
    let records: Vec<Vec<u32>> = g
        .vertices()
        .map(|u| {
            let mut r = g.neighbors(u).to_vec();
            let pos = r.partition_point(|&x| x < u);
            r.insert(pos, u);
            r
        })
        .collect();
    let mut group = Group::new("substrate/setjoin");
    group.sample_size(20).bench("index-build-5k", || {
        InvertedIndex::build(&records, g.num_vertices())
    });
    let idx = InvertedIndex::build(&records, g.num_vertices());
    group
        .bench("superset-probes", || {
            let mut total = 0usize;
            for u in g.vertices().take(200) {
                total += idx.supersets_of(g.neighbors(u)).len();
            }
            total
        })
        .finish();
}

fn bench_extensions() {
    use nsky_clique::mis::reducing_peeling_mis;
    use nsky_graph::generators::leafy_preferential;
    use nsky_skyline::approx::approx_sky;
    let g = leafy_preferential(10_000, 0.95, 1.0, 5, 7);
    let mut group = Group::new("substrate/extensions");
    group
        .sample_size(10)
        .bench("approx-sky-eps0.3", || approx_sky(&g, 0.3))
        .bench("mis-reducing-peeling", || reducing_peeling_mis(&g))
        .finish();
}

fn main() {
    bench_graph_build();
    bench_bfs();
    bench_core_decomposition();
    bench_bloom();
    bench_containment_join();
    bench_extensions();
}
