//! Criterion benches for the substrate layers: graph construction, BFS,
//! core decomposition, bloom filter operations and the containment join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsky_bloom::{BloomConfig, NeighborhoodFilters};
use nsky_graph::degeneracy::core_decomposition;
use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};
use nsky_graph::traversal::Bfs;
use nsky_graph::Graph;
use nsky_setjoin::InvertedIndex;

fn bench_graph_build(c: &mut Criterion) {
    let edges: Vec<(u32, u32)> = erdos_renyi(20_000, 0.001, 7).edges().collect();
    let mut group = c.benchmark_group("substrate/graph");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("csr-build-20k"), |b| {
        b.iter(|| Graph::from_edges(20_000, edges.iter().copied()))
    });
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let g = chung_lu_power_law(20_000, 2.7, 8.0, 7);
    let mut bfs = Bfs::new(g.num_vertices());
    let mut group = c.benchmark_group("substrate/bfs");
    group.sample_size(50);
    group.bench_function(BenchmarkId::from_parameter("single-source-20k"), |b| {
        b.iter(|| bfs.run(&g, 0))
    });
    group.finish();
}

fn bench_core_decomposition(c: &mut Criterion) {
    let g = chung_lu_power_law(20_000, 2.7, 8.0, 7);
    let mut group = c.benchmark_group("substrate/cores");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("peeling-20k"), |b| {
        b.iter(|| core_decomposition(&g))
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let g = chung_lu_power_law(10_000, 2.7, 8.0, 7);
    let cfg = BloomConfig::for_max_degree(g.max_degree(), 2.0);
    let filters = NeighborhoodFilters::build(&g, g.vertices(), cfg);
    let mut group = c.benchmark_group("substrate/bloom");
    group.bench_function(BenchmarkId::from_parameter("build-10k"), |b| {
        b.iter(|| NeighborhoodFilters::build(&g, g.vertices(), cfg))
    });
    group.bench_function(BenchmarkId::from_parameter("subset-probe"), |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for u in 0..64u32 {
                for w in 64..128u32 {
                    if filters.filter_subset(u, w) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_containment_join(c: &mut Criterion) {
    let g = chung_lu_power_law(5_000, 2.7, 8.0, 7);
    let records: Vec<Vec<u32>> = g
        .vertices()
        .map(|u| {
            let mut r = g.neighbors(u).to_vec();
            let pos = r.partition_point(|&x| x < u);
            r.insert(pos, u);
            r
        })
        .collect();
    let mut group = c.benchmark_group("substrate/setjoin");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("index-build-5k"), |b| {
        b.iter(|| InvertedIndex::build(&records, g.num_vertices()))
    });
    let idx = InvertedIndex::build(&records, g.num_vertices());
    group.bench_function(BenchmarkId::from_parameter("superset-probes"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for u in g.vertices().take(200) {
                total += idx.supersets_of(g.neighbors(u)).len();
            }
            total
        })
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    use nsky_clique::mis::reducing_peeling_mis;
    use nsky_graph::generators::leafy_preferential;
    use nsky_skyline::approx::approx_sky;
    let g = leafy_preferential(10_000, 0.95, 1.0, 5, 7);
    let mut group = c.benchmark_group("substrate/extensions");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("approx-sky-eps0.3"), |b| {
        b.iter(|| approx_sky(&g, 0.3))
    });
    group.bench_function(BenchmarkId::from_parameter("mis-reducing-peeling"), |b| {
        b.iter(|| reducing_peeling_mis(&g))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_bfs,
    bench_core_decomposition,
    bench_bloom,
    bench_containment_join,
    bench_extensions
);
criterion_main!(benches);
