//! Micro-benchmarks for incremental skyline maintenance: per-delta
//! cost of `MutableSkyline::apply_batch` against a from-scratch
//! `filter_refine_sky` recompute on the 8k stand-in graphs. The
//! maintenance benches apply an effective batch followed by its
//! inverse so every iteration starts from the same graph; divide the
//! reported time by twice the batch length for per-delta cost.

use std::collections::BTreeSet;

use nsky_bench::micro::Group;
use nsky_graph::generators::{affiliation_model, leafy_preferential};
use nsky_graph::prng::SplitMix64;
use nsky_graph::{EdgeDelta, Graph};
use nsky_skyline::{filter_refine_sky, MutableSkyline, RefineConfig};

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("leafy-8k", leafy_preferential(8_000, 0.95, 1.5, 5, 42)),
        ("affiliation-8k", affiliation_model(8_000, 4, 8, 0.7, 42)),
    ]
}

/// A batch of `len` deltas, each effective against the running edge
/// set (no no-ops), so the reversed inverse batch restores the graph.
fn effective_batch(rng: &mut SplitMix64, g: &Graph, len: usize) -> Vec<EdgeDelta> {
    let n = g.num_vertices();
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            if u < v {
                edges.insert((u, v));
            }
        }
    }
    let mut batch = Vec::with_capacity(len);
    while batch.len() < len {
        let u = rng.next_index(n) as u32;
        let v = rng.next_index(n) as u32;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        let insert = rng.next_bool(0.5);
        if insert == edges.contains(&key) {
            continue;
        }
        if insert {
            edges.insert(key);
            batch.push(EdgeDelta::Insert(u, v));
        } else {
            edges.remove(&key);
            batch.push(EdgeDelta::Delete(u, v));
        }
    }
    batch
}

fn main() {
    let mut rng = SplitMix64::new(0x0bed_ead5);
    for (name, g) in graphs() {
        let batch = effective_batch(&mut rng, &g, 128);
        let inverse: Vec<EdgeDelta> = batch.iter().rev().map(|d| d.inverse()).collect();
        let single = &batch[..1];
        let single_inv = &inverse[inverse.len() - 1..];

        let mut group = Group::new(&format!("dynamic/{name}"));
        let mut engine = MutableSkyline::new(g.clone());
        group
            .sample_size(10)
            .bench("Maintain1DeltaRoundTrip", || {
                engine.apply_batch(single);
                engine.apply_batch(single_inv);
            })
            .bench("Maintain128DeltaRoundTrip", || {
                engine.apply_batch(&batch);
                engine.apply_batch(&inverse);
            })
            .bench("FromScratchRecompute", || {
                filter_refine_sky(&g, &RefineConfig::default())
            })
            .finish();
    }
}
