//! Ablation benches for the design choices DESIGN.md calls out:
//! bloom-filter width, whole-filter pre-check, 2-hop dedup stamps,
//! candidate-adjacency index, min-degree-neighbor scan, BaseSky early
//! exit, and CELF lazy evaluation. Runs on the std-only
//! `nsky_bench::micro` harness.

use nsky_bench::micro::Group;
use nsky_centrality::greedy::{greedy_group, GreedyOptions};
use nsky_centrality::measure::Harmonic;
use nsky_graph::generators::leafy_preferential;
use nsky_graph::Graph;
use nsky_skyline::budget::ExecutionBudget;
use nsky_skyline::obs::{CountingRecorder, NoopRecorder};
use nsky_skyline::snapshot::FileCheckpointer;
use nsky_skyline::{
    base_sky, base_sky_budgeted, base_sky_early_exit, base_sky_resumable, filter_refine_sky,
    filter_refine_sky_budgeted, filter_refine_sky_recorded, filter_refine_sky_resumable,
    RefineConfig,
};
use std::time::Duration;

fn graph() -> Graph {
    leafy_preferential(10_000, 0.95, 1.5, 5, 42)
}

fn bench_ablation_bloom_width() {
    let g = graph();
    let mut group = Group::new("ablation_bloom");
    group.sample_size(10);
    for bits in [0.5f64, 1.0, 2.0, 8.0] {
        let cfg = RefineConfig {
            bloom_bits_per_element: bits,
            ..RefineConfig::default()
        };
        group.bench(&format!("{bits}b/elem"), || filter_refine_sky(&g, &cfg));
    }
    group.finish();
}

fn bench_ablation_switches() {
    let g = graph();
    let mut group = Group::new("ablation_switches");
    group.sample_size(10);
    let variants: Vec<(&str, RefineConfig)> = vec![
        ("default", RefineConfig::default()),
        (
            "no-prefilter",
            RefineConfig {
                use_word_prefilter: false,
                ..RefineConfig::default()
            },
        ),
        (
            "no-dedup",
            RefineConfig {
                dedup_two_hop: false,
                ..RefineConfig::default()
            },
        ),
        (
            "no-candidate-index",
            RefineConfig {
                candidate_index: false,
                ..RefineConfig::default()
            },
        ),
        (
            "no-min-neighbor",
            RefineConfig {
                scan_min_neighbor: false,
                ..RefineConfig::default()
            },
        ),
        ("paper-faithful", RefineConfig::paper_faithful()),
    ];
    for (name, cfg) in variants {
        group.bench(name, || filter_refine_sky(&g, &cfg));
    }
    group.finish();
}

fn bench_ablation_early_exit() {
    let g = graph();
    let mut group = Group::new("ablation_early_exit");
    group
        .sample_size(10)
        .bench("BaseSky-faithful", || base_sky(&g))
        .bench("BaseSky-early-exit", || base_sky_early_exit(&g))
        .finish();
}

fn bench_ablation_celf() {
    let g = leafy_preferential(1_500, 0.94, 1.5, 8, 7);
    let k = 10;
    let mut group = Group::new("ablation_celf");
    group
        .sample_size(10)
        .bench("plain-greedy", || {
            greedy_group(&g, Harmonic, k, &GreedyOptions::default())
        })
        .bench("celf-lazy", || {
            greedy_group(&g, Harmonic, k, &GreedyOptions::optimized())
        })
        .finish();
}

/// The cost of an armed-but-untripped budget: open-loop kernels vs the
/// budgeted entry points under a far wall-clock deadline that forces
/// every ticker poll without ever tripping. Target: <2% overhead (the
/// `[Complete]` tag on the budgeted lines confirms no trip occurred).
fn bench_ablation_budget_overhead() {
    let g = graph();
    let cfg = RefineConfig::default();
    let far = || ExecutionBudget::with_timeout(Duration::from_secs(3600));
    let mut group = Group::new("budget_overhead");
    group
        .sample_size(10)
        .bench("FilterRefineSky-open-loop", || filter_refine_sky(&g, &cfg))
        .bench_budgeted("FilterRefineSky-budgeted", || {
            let r = filter_refine_sky_budgeted(&g, &cfg, &far());
            let completion = r.completion;
            (r, completion)
        })
        .bench("BaseSky-open-loop", || base_sky(&g))
        .bench_budgeted("BaseSky-budgeted", || {
            let r = base_sky_budgeted(&g, &far());
            let completion = r.completion;
            (r, completion)
        })
        .finish();
}

/// The cost of periodic checkpointing on an uninterrupted run: budgeted
/// kernels (no checkpoint period armed) vs the `*_resumable` entry
/// points snapshotting to a [`FileCheckpointer`] every 1024 polls (the
/// CLI's default `--checkpoint-interval`). Target: <5% overhead at the
/// default interval; the denser 64-poll line shows how the cost scales
/// when snapshots are taken 16x as often.
fn bench_ablation_checkpoint_overhead() {
    let g = graph();
    let cfg = RefineConfig::default();
    let far = || ExecutionBudget::with_timeout(Duration::from_secs(3600));
    let path = std::env::temp_dir().join(format!("nsky-bench-ck-{}.snap", std::process::id()));
    let mut group = Group::new("checkpoint_overhead");
    group
        .sample_size(10)
        .bench_budgeted("FilterRefineSky-no-checkpoint", || {
            let r = filter_refine_sky_budgeted(&g, &cfg, &far());
            let completion = r.completion;
            (r, completion)
        });
    for period in [1024u64, 64] {
        group.bench_budgeted(&format!("FilterRefineSky-every-{period}-polls"), || {
            let budget = far();
            budget.set_checkpoint_period(period);
            let mut sink = FileCheckpointer::new(&path);
            let run = filter_refine_sky_resumable(&g, &cfg, &budget, None, Some(&mut sink));
            let completion = run.outcome.completion;
            (run, completion)
        });
    }
    group.bench_budgeted("BaseSky-no-checkpoint", || {
        let r = base_sky_budgeted(&g, &far());
        let completion = r.completion;
        (r, completion)
    });
    for period in [1024u64, 64] {
        group.bench_budgeted(&format!("BaseSky-every-{period}-polls"), || {
            let budget = far();
            budget.set_checkpoint_period(period);
            let mut sink = FileCheckpointer::new(&path);
            let run = base_sky_resumable(&g, &budget, None, Some(&mut sink));
            let completion = run.outcome.completion;
            (run, completion)
        });
    }
    group.finish();
    std::fs::remove_file(&path).ok();
}

/// The cost of observability on the refine kernel: the uninstrumented
/// entry point vs `filter_refine_sky_recorded` under a [`NoopRecorder`]
/// (target: within noise — every recorder call is an inlined no-op) and
/// under a live [`CountingRecorder`] (target: <3% — counters are bulk
/// deltas flushed at phase boundaries, never per-event atomics).
fn bench_ablation_obs_overhead() {
    let g = graph();
    let cfg = RefineConfig::default();
    let mut group = Group::new("obs_overhead");
    group
        .sample_size(10)
        .bench("refine-uninstrumented", || filter_refine_sky(&g, &cfg))
        .bench("refine-noop-recorder", || {
            filter_refine_sky_recorded(&g, &cfg, &NoopRecorder)
        })
        .bench("refine-counting-recorder", || {
            let rec = CountingRecorder::new();
            filter_refine_sky_recorded(&g, &cfg, &rec)
        })
        .finish();
}

fn main() {
    bench_ablation_bloom_width();
    bench_ablation_switches();
    bench_ablation_early_exit();
    bench_ablation_celf();
    bench_ablation_budget_overhead();
    bench_ablation_checkpoint_overhead();
    bench_ablation_obs_overhead();
}
