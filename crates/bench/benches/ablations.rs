//! Ablation benches for the design choices DESIGN.md calls out:
//! bloom-filter width, whole-filter pre-check, 2-hop dedup stamps,
//! candidate-adjacency index, min-degree-neighbor scan, BaseSky early
//! exit, and CELF lazy evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsky_centrality::greedy::{greedy_group, GreedyOptions};
use nsky_centrality::measure::Harmonic;
use nsky_graph::generators::leafy_preferential;
use nsky_graph::Graph;
use nsky_skyline::{base_sky, base_sky_early_exit, filter_refine_sky, RefineConfig};

fn graph() -> Graph {
    leafy_preferential(10_000, 0.95, 1.5, 5, 42)
}

fn bench_ablation_bloom_width(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation_bloom");
    group.sample_size(10);
    for bits in [0.5f64, 1.0, 2.0, 8.0] {
        let cfg = RefineConfig {
            bloom_bits_per_element: bits,
            ..RefineConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{bits}b/elem")),
            &cfg,
            |b, cfg| b.iter(|| filter_refine_sky(&g, cfg)),
        );
    }
    group.finish();
}

fn bench_ablation_switches(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation_switches");
    group.sample_size(10);
    let variants: Vec<(&str, RefineConfig)> = vec![
        ("default", RefineConfig::default()),
        (
            "no-prefilter",
            RefineConfig {
                use_word_prefilter: false,
                ..RefineConfig::default()
            },
        ),
        (
            "no-dedup",
            RefineConfig {
                dedup_two_hop: false,
                ..RefineConfig::default()
            },
        ),
        (
            "no-candidate-index",
            RefineConfig {
                candidate_index: false,
                ..RefineConfig::default()
            },
        ),
        (
            "no-min-neighbor",
            RefineConfig {
                scan_min_neighbor: false,
                ..RefineConfig::default()
            },
        ),
        ("paper-faithful", RefineConfig::paper_faithful()),
    ];
    for (name, cfg) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| filter_refine_sky(&g, cfg))
        });
    }
    group.finish();
}

fn bench_ablation_early_exit(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation_early_exit");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("BaseSky-faithful"), |b| {
        b.iter(|| base_sky(&g))
    });
    group.bench_function(BenchmarkId::from_parameter("BaseSky-early-exit"), |b| {
        b.iter(|| base_sky_early_exit(&g))
    });
    group.finish();
}

fn bench_ablation_celf(c: &mut Criterion) {
    let g = leafy_preferential(1_500, 0.94, 1.5, 8, 7);
    let k = 10;
    let mut group = c.benchmark_group("ablation_celf");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("plain-greedy"), |b| {
        b.iter(|| greedy_group(&g, Harmonic, k, &GreedyOptions::default()))
    });
    group.bench_function(BenchmarkId::from_parameter("celf-lazy"), |b| {
        b.iter(|| greedy_group(&g, Harmonic, k, &GreedyOptions::optimized()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ablation_bloom_width,
    bench_ablation_switches,
    bench_ablation_early_exit,
    bench_ablation_celf
);
criterion_main!(benches);
