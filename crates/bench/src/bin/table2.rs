//! Prints Table II: MC-BRB vs NeiSkyMC scalability (vary n, ρ).

use nsky_bench::figures::Axis;
use nsky_bench::harness::{fmt_secs, quick_mode};

fn main() {
    println!("Table II — maximum clique scalability on LiveJournal stand-in");
    println!(
        "{:<5} {:>5} | {:>10} {:>10} {:>4}",
        "axis", "frac", "MC-BRB", "NeiSkyMC", "ω"
    );
    for r in nsky_bench::figures::table2(quick_mode()) {
        println!(
            "{:<5} {:>4.0}% | {:>10} {:>10} {:>4}",
            if r.axis == Axis::N { "n" } else { "rho" },
            r.fraction * 100.0,
            fmt_secs(r.secs_mcbrb),
            fmt_secs(r.secs_neisky),
            r.omega,
        );
    }
}
