//! Prints Fig. 3: runtimes of the five skyline algorithms.

use nsky_bench::harness::{fmt_secs, quick_mode};

fn main() {
    println!("Fig. 3 — skyline computation runtime (seconds)");
    println!(
        "{:<11} {:>7} {:>8} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>7} {:>7}",
        "dataset",
        "n",
        "m",
        "LC-Join",
        "BaseSky",
        "Base2Hop",
        "BaseCSet",
        "FRSky",
        "spd/LC",
        "spd/Base"
    );
    for r in nsky_bench::figures::fig3(quick_mode()) {
        println!(
            "{:<11} {:>7} {:>8} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>6.1}x {:>6.1}x",
            r.dataset,
            r.n,
            r.m,
            fmt_secs(r.secs_lc_join),
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_two_hop),
            fmt_secs(r.secs_cset),
            fmt_secs(r.secs_refine),
            r.secs_lc_join / r.secs_refine,
            r.secs_base / r.secs_refine,
        );
    }
}
