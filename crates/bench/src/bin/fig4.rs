//! Prints Fig. 4: working-memory footprints of the skyline algorithms.

use nsky_bench::harness::{fmt_bytes, quick_mode};

fn main() {
    println!("Fig. 4 — working memory (graph excluded)");
    println!(
        "{:<11} {:>7} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "dataset", "n", "LC-Join", "BaseSky", "Base2Hop", "BaseCSet", "FRSky"
    );
    for r in nsky_bench::figures::fig4(quick_mode()) {
        println!(
            "{:<11} {:>7} | {:>10} {:>10} {:>10} {:>10} {:>10}",
            r.dataset,
            r.n,
            fmt_bytes(r.mem_lc_join),
            fmt_bytes(r.mem_base),
            fmt_bytes(r.mem_two_hop),
            fmt_bytes(r.mem_cset),
            fmt_bytes(r.mem_refine),
        );
    }
}
