//! Prints Fig. 6: |R|, |C|, |V| on synthetic ER and power-law sweeps.

use nsky_bench::harness::quick_mode;

fn main() {
    let quick = quick_mode();
    println!("Fig. 6(a) — ER graphs, vary Δp (p = Δp·ln n / n)");
    println!("{:>5} {:>8} {:>8} {:>8}", "Δp", "|R|", "|C|", "|V|");
    for r in nsky_bench::figures::fig6_er(quick) {
        println!(
            "{:>5.1} {:>8} {:>8} {:>8}",
            r.parameter, r.skyline, r.candidates, r.total
        );
    }
    println!();
    println!("Fig. 6(b) — power-law graphs, vary β");
    println!("{:>5} {:>8} {:>8} {:>8}", "β", "|R|", "|C|", "|V|");
    for r in nsky_bench::figures::fig6_pl(quick) {
        println!(
            "{:>5.1} {:>8} {:>8} {:>8}",
            r.parameter, r.skyline, r.candidates, r.total
        );
    }
}
