//! Regenerates every table and figure in sequence (EXPERIMENTS.md data).
//!
//! Honors `NSKY_QUICK=1` for smoke runs.

use nsky_bench::harness::time;

fn banner(name: &str) {
    println!();
    println!("==================== {name} ====================");
}

fn main() {
    let total = time(|| {
        for (name, bin) in [
            ("table1", run_table1 as fn()),
            ("fig2", run_fig2),
            ("fig3+fig4", run_fig3_4),
            ("fig5", run_fig5),
            ("fig6", run_fig6),
            ("fig7", run_fig7),
            ("fig8", run_fig8),
            ("fig9", run_fig9),
            ("fig10", run_fig10),
            ("fig11", run_fig11),
            ("fig12", run_fig12),
            ("table2", run_table2),
            ("fig13", run_fig13),
        ] {
            banner(name);
            let t = time(bin);
            println!("[{name} done in {:.1}s]", t.seconds);
        }
    });
    println!();
    println!("All experiments regenerated in {:.1}s", total.seconds);
}

use nsky_bench::figures as f;
use nsky_bench::harness::{fmt_bytes, fmt_secs, quick_mode};

fn run_table1() {
    for r in f::table1() {
        println!(
            "{:<11} orig (n={}, m={}, dmax={}) -> standin (n={}, m={}, dmax={})",
            r.name, r.original.0, r.original.1, r.original.2, r.standin.0, r.standin.1, r.standin.2
        );
    }
}

fn run_fig2() {
    for r in f::fig2() {
        println!(
            "{:<12} n={:<3} |R|={:<3} |C|={:<3} expected={}",
            r.family, r.n, r.skyline, r.candidates, r.expected
        );
    }
}

fn run_fig3_4() {
    for r in f::fig3(quick_mode()) {
        println!(
            "{:<11} time: LC={} Base={} 2Hop={} CSet={} FRSky={} | mem: LC={} Base={} 2Hop={} CSet={} FRSky={}",
            r.dataset,
            fmt_secs(r.secs_lc_join),
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_two_hop),
            fmt_secs(r.secs_cset),
            fmt_secs(r.secs_refine),
            fmt_bytes(r.mem_lc_join),
            fmt_bytes(r.mem_base),
            fmt_bytes(r.mem_two_hop),
            fmt_bytes(r.mem_cset),
            fmt_bytes(r.mem_refine),
        );
    }
}

fn run_fig5() {
    for r in f::fig5(quick_mode()) {
        println!(
            "{:<11} |R|={:<7} |C|={:<7} |V|={}",
            r.dataset, r.skyline, r.candidates, r.n
        );
    }
}

fn run_fig6() {
    for r in f::fig6_er(quick_mode()) {
        println!(
            "ER Δp={:<4} |R|={:<7} |C|={:<7} |V|={}",
            r.parameter, r.skyline, r.candidates, r.total
        );
    }
    for r in f::fig6_pl(quick_mode()) {
        println!(
            "PL β={:<4} |R|={:<7} |C|={:<7} |V|={}",
            r.parameter, r.skyline, r.candidates, r.total
        );
    }
}

fn run_fig7() {
    for r in f::fig7(quick_mode()) {
        println!(
            "{:<11} k={:<3} Greedy++={} NeiSkyGC={} ({:.2}x), evals {} vs {}, r={}",
            r.dataset,
            r.k,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_neisky),
            r.secs_base / r.secs_neisky,
            r.evals_base,
            r.evals_neisky,
            r.skyline_size
        );
    }
}

fn run_fig8() {
    for r in f::fig8(quick_mode()) {
        println!(
            "{:<11} k={:<3} Greedy-H={} NeiSkyGH={} ({:.2}x), evals {} vs {}, r={}",
            r.dataset,
            r.k,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_neisky),
            r.secs_base / r.secs_neisky,
            r.evals_base,
            r.evals_neisky,
            r.skyline_size
        );
    }
}

fn run_fig9() {
    for r in f::fig9(quick_mode()) {
        println!(
            "{:<8} k={:<2} Base={} NeiSky={} ({:.2}x) sizes={:?}",
            r.dataset,
            r.k,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_neisky),
            r.secs_base / r.secs_neisky,
            r.sizes_neisky
        );
    }
}

fn run_fig10() {
    for r in f::fig10(quick_mode()) {
        println!(
            "{:?} {:>3.0}% BaseSky={} FRSky={} ({:.1}x)",
            r.axis,
            r.fraction * 100.0,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_fast),
            r.secs_base / r.secs_fast
        );
    }
}

fn run_fig11() {
    for r in f::fig11(quick_mode()) {
        println!(
            "{:?} {:>3.0}% Greedy++={} NeiSkyGC={} ({:.2}x)",
            r.axis,
            r.fraction * 100.0,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_fast),
            r.secs_base / r.secs_fast
        );
    }
}

fn run_fig12() {
    for r in f::fig12(quick_mode()) {
        println!(
            "{:?} {:>3.0}% Greedy-H={} NeiSkyGH={} ({:.2}x)",
            r.axis,
            r.fraction * 100.0,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_fast),
            r.secs_base / r.secs_fast
        );
    }
}

fn run_table2() {
    for r in f::table2(quick_mode()) {
        println!(
            "{:?} {:>3.0}% MC-BRB={} NeiSkyMC={} ω={}",
            r.axis,
            r.fraction * 100.0,
            fmt_secs(r.secs_mcbrb),
            fmt_secs(r.secs_neisky),
            r.omega
        );
    }
}

fn run_fig13() {
    for r in f::fig13() {
        println!(
            "{:<8} skyline {}/{} ({:.0}%, paper {:.0}%)",
            r.network,
            r.skyline.len(),
            r.n,
            100.0 * r.skyline.len() as f64 / r.n as f64,
            100.0 * r.paper_fraction
        );
    }
}
