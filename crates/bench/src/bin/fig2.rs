//! Prints Fig. 2: skyline/candidate sizes on special graph families.

fn main() {
    println!("Fig. 2 — |R| and |C| on special families");
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>9}",
        "family", "n", "|R|", "|C|", "expected"
    );
    for r in nsky_bench::figures::fig2() {
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>9}",
            r.family, r.n, r.skyline, r.candidates, r.expected
        );
        assert_eq!(r.skyline, r.expected, "{} skyline off", r.family);
        assert_eq!(r.candidates, r.expected, "{} candidates off", r.family);
    }
}
