//! Prints Fig. 7: Greedy++ vs NeiSkyGC (group closeness), varying k.

use nsky_bench::harness::{fmt_secs, quick_mode};

fn main() {
    println!("Fig. 7 — group closeness maximization (CELF engine both sides)");
    println!(
        "{:<11} {:>3} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "dataset", "k", "Greedy++", "NeiSkyGC", "speedup", "evals++", "evalsNS", "r=|R|"
    );
    for r in nsky_bench::figures::fig7(quick_mode()) {
        assert!(
            r.score_neisky >= r.score_base - 1e-9,
            "pruning lost quality"
        );
        println!(
            "{:<11} {:>3} | {:>9} {:>9} {:>6.2}x | {:>9} {:>9} {:>7}",
            r.dataset,
            r.k,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_neisky),
            r.secs_base / r.secs_neisky,
            r.evals_base,
            r.evals_neisky,
            r.skyline_size
        );
    }
}
