//! Prints Fig. 9: BaseTopkMCC vs NeiSkyTopkMCC, varying k.

use nsky_bench::harness::{fmt_secs, quick_mode};

fn main() {
    println!("Fig. 9 — top-k maximum cliques");
    println!(
        "{:<8} {:>3} | {:>10} {:>10} {:>8} | sizes",
        "dataset", "k", "BaseTopk", "NeiSkyTopk", "speedup"
    );
    for r in nsky_bench::figures::fig9(quick_mode()) {
        println!(
            "{:<8} {:>3} | {:>10} {:>10} {:>7.2}x | base {:?} neisky {:?}",
            r.dataset,
            r.k,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_neisky),
            r.secs_base / r.secs_neisky,
            r.sizes_base,
            r.sizes_neisky,
        );
    }
}
