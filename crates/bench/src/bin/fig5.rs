//! Prints Fig. 5: |R|, |C|, |V| on the evaluation datasets.

use nsky_bench::harness::quick_mode;

fn main() {
    println!("Fig. 5 — skyline vs candidate vs total vertices");
    println!(
        "{:<11} {:>8} {:>8} {:>8} {:>8}",
        "dataset", "|R|", "|C|", "|V|", "|V|/|R|"
    );
    for r in nsky_bench::figures::fig5(quick_mode()) {
        println!(
            "{:<11} {:>8} {:>8} {:>8} {:>7.1}x",
            r.dataset,
            r.skyline,
            r.candidates,
            r.n,
            r.n as f64 / r.skyline as f64
        );
    }
}
