//! Prints Fig. 8: Greedy-H vs NeiSkyGH (group harmonic), varying k.

use nsky_bench::harness::{fmt_secs, quick_mode};

fn main() {
    println!("Fig. 8 — group harmonic maximization (CELF engine both sides)");
    println!(
        "{:<11} {:>3} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "dataset", "k", "Greedy-H", "NeiSkyGH", "speedup", "evals-H", "evalsNS", "r=|R|"
    );
    for r in nsky_bench::figures::fig8(quick_mode()) {
        assert!(
            r.score_neisky >= r.score_base - 1e-9,
            "pruning lost quality"
        );
        println!(
            "{:<11} {:>3} | {:>9} {:>9} {:>6.2}x | {:>9} {:>9} {:>7}",
            r.dataset,
            r.k,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_neisky),
            r.secs_base / r.secs_neisky,
            r.evals_base,
            r.evals_neisky,
            r.skyline_size
        );
    }
}
