//! Prints Table I: dataset statistics, original vs stand-in.

fn main() {
    println!("Table I — datasets (original → scaled stand-in)");
    println!(
        "{:<12} {:<24} {:>10} {:>11} {:>8}   {:>7} {:>8} {:>6}",
        "dataset", "description", "orig n", "orig m", "orig dx", "n", "m", "dmax"
    );
    for r in nsky_bench::figures::table1() {
        println!(
            "{:<12} {:<24} {:>10} {:>11} {:>8}   {:>7} {:>8} {:>6}",
            r.name,
            r.description,
            r.original.0,
            r.original.1,
            r.original.2,
            r.standin.0,
            r.standin.1,
            r.standin.2
        );
    }
}
