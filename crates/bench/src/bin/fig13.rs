//! Prints Fig. 13: case studies on Karate and Bombing.

fn main() {
    println!("Fig. 13 — case studies");
    for r in nsky_bench::figures::fig13() {
        let frac = r.skyline.len() as f64 / r.n as f64;
        println!(
            "{:<8} n={:<3} m={:<4} skyline={:<3} ({:.0}%, paper {:.0}%)  avg deg: skyline {:.1} vs dominated {:.1}",
            r.network,
            r.n,
            r.m,
            r.skyline.len(),
            frac * 100.0,
            r.paper_fraction * 100.0,
            r.skyline_avg_degree,
            r.dominated_avg_degree,
        );
        println!("  skyline vertices: {:?}", r.skyline);
    }
}
