//! Prints Fig. 11: Greedy++ vs NeiSkyGC scalability (vary n, ρ).

use nsky_bench::figures::Axis;
use nsky_bench::harness::{fmt_secs, quick_mode};

fn main() {
    println!("Fig. 11 — group closeness scalability on LiveJournal stand-in");
    println!(
        "{:<5} {:>5} | {:>10} {:>10} {:>8}",
        "axis", "frac", "Greedy++", "NeiSkyGC", "speedup"
    );
    for r in nsky_bench::figures::fig11(quick_mode()) {
        println!(
            "{:<5} {:>4.0}% | {:>10} {:>10} {:>7.2}x",
            if r.axis == Axis::N { "n" } else { "rho" },
            r.fraction * 100.0,
            fmt_secs(r.secs_base),
            fmt_secs(r.secs_fast),
            r.secs_base / r.secs_fast,
        );
    }
}
