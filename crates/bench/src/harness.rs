//! Timing and formatting helpers shared by the figure harnesses.

use std::time::Instant;

/// A value together with the wall-clock seconds it took to produce.
#[derive(Clone, Debug)]
pub struct Timed<T> {
    /// The computed value.
    pub value: T,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let value = f();
    Timed {
        value,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Whether quick mode is requested (`NSKY_QUICK=1`): harness binaries
/// shrink their sweeps so CI smoke runs stay fast.
pub fn quick_mode() -> bool {
    std::env::var("NSKY_QUICK").is_ok_and(|v| v == "1")
}

/// Formats seconds with sensible precision for table output
/// (`INF` for skipped algorithms).
pub fn fmt_secs(s: f64) -> String {
    if s.is_infinite() {
        "INF".to_string()
    } else if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a byte count as a human-readable string
/// (`INF` for skipped algorithms).
pub fn fmt_bytes(b: usize) -> String {
    const KB: f64 = 1024.0;
    if b == usize::MAX {
        return "INF".to_string();
    }
    let b = b as f64;
    if b < KB {
        format!("{b:.0}B")
    } else if b < KB * KB {
        format!("{:.1}KB", b / KB)
    } else if b < KB * KB * KB {
        format!("{:.1}MB", b / KB / KB)
    } else {
        format!("{:.2}GB", b / KB / KB / KB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_returns() {
        let t = time(|| (0..1000).sum::<u64>());
        assert_eq!(t.value, 499_500);
        assert!(t.seconds >= 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(f64::INFINITY), "INF");
        assert_eq!(fmt_bytes(usize::MAX), "INF");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
    }
}
