//! # nsky-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation section (see DESIGN.md §5 for the experiment
//! index, and EXPERIMENTS.md for recorded paper-vs-measured results).
//!
//! All experiment logic lives in [`figures`] as pure functions returning
//! row structs, so that integration tests can assert the structural
//! claims (who wins, subset relations) on reduced configurations; the
//! `src/bin/*` binaries print the rows. Micro-benchmarks live in
//! `benches/` on the dependency-free [`micro`] harness.
//!
//! Run `cargo run -p nsky-bench --release --bin repro_all` to regenerate
//! everything at once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod micro;
