//! A dependency-free micro-benchmark harness.
//!
//! The repo's dependency policy (DESIGN.md §3) keeps the workspace
//! resolvable with no network access, so the `benches/` targets use this
//! tiny harness instead of Criterion: warm-up, a fixed sample count,
//! min/median/mean wall-clock reporting. It is deliberately simple —
//! regressions are judged by eye against EXPERIMENTS.md, not by
//! statistical change detection.
//!
//! Sample count defaults to 10 and can be overridden with
//! `NSKY_BENCH_SAMPLES`; `NSKY_QUICK=1` drops it to 3 for smoke runs.

use std::hint::black_box;
use std::time::Instant;

use crate::harness::{fmt_secs, quick_mode};
use nsky_skyline::Completion;

/// A named group of benchmarks, mirroring the Criterion group shape so
/// bench files read the same way.
#[derive(Debug)]
pub struct Group {
    name: String,
    samples: usize,
}

/// Samples requested via `NSKY_BENCH_SAMPLES`, if any.
fn env_samples() -> Option<usize> {
    std::env::var("NSKY_BENCH_SAMPLES").ok()?.parse().ok()
}

impl Group {
    /// Starts a group; the name prefixes every benchmark line.
    pub fn new(name: &str) -> Self {
        let samples = env_samples().unwrap_or(if quick_mode() { 3 } else { 10 });
        println!("# group {name}");
        Group {
            name: name.to_string(),
            samples: samples.max(1),
        }
    }

    /// Overrides the sample count for this group (environment variables
    /// still take precedence, so CI can globally shrink sweeps).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if env_samples().is_none() && !quick_mode() {
            self.samples = n.max(1);
        }
        self
    }

    /// Runs one benchmark: one warm-up call, then `samples` timed calls.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) -> &mut Self {
        black_box(f());
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{}/{id}: min {} median {} mean {} ({} samples)",
            self.name,
            fmt_secs(min),
            fmt_secs(median),
            fmt_secs(mean),
            self.samples
        );
        self
    }

    /// Runs one benchmark of a budgeted kernel: like [`Group::bench`],
    /// but `f` also returns the run's [`Completion`], which is appended
    /// to the report line. Anytime ablations use this to show whether a
    /// configuration finished or returned a partial answer — and the
    /// `budget_overhead` group pairs it with [`Group::bench`] to measure
    /// the cost of armed-but-untripped budget checks (<2% target).
    pub fn bench_budgeted<T>(
        &mut self,
        id: &str,
        mut f: impl FnMut() -> (T, Completion),
    ) -> &mut Self {
        let (_, completion) = black_box(f());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{}/{id}: min {} median {} mean {} ({} samples) [{completion}]",
            self.name,
            fmt_secs(min),
            fmt_secs(median),
            fmt_secs(mean),
            self.samples
        );
        self
    }

    /// Ends the group (marker for symmetry with Criterion's API).
    pub fn finish(&mut self) {
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = Group::new("selftest");
        g.sample_size(2);
        let mut calls = 0u32;
        g.bench("sum", || {
            calls += 1;
            (0..100).sum::<u64>()
        });
        // one warm-up + two samples
        assert_eq!(calls, 3);
        g.finish();
    }

    #[test]
    fn bench_budgeted_runs_and_reports_completion() {
        let mut g = Group::new("selftest_budgeted");
        g.sample_size(2);
        let mut calls = 0u32;
        g.bench_budgeted("sum", || {
            calls += 1;
            ((0..100).sum::<u64>(), Completion::Complete)
        });
        assert_eq!(calls, 3);
        g.finish();
    }
}
