//! A dependency-free micro-benchmark harness.
//!
//! The repo's dependency policy (DESIGN.md §3) keeps the workspace
//! resolvable with no network access, so the `benches/` targets use this
//! tiny harness instead of Criterion: warm-up, a fixed sample count,
//! min/median/mean wall-clock reporting. It is deliberately simple —
//! regressions are judged by eye against EXPERIMENTS.md, not by
//! statistical change detection.
//!
//! Sample count defaults to 10 and can be overridden with
//! `NSKY_BENCH_SAMPLES`; `NSKY_QUICK=1` drops it to 3 for smoke runs.
//!
//! With [`Group::json_dir`] (or the `NSKY_BENCH_JSON=<dir>` environment
//! variable) each group also writes `BENCH_<group>.json` — punctuation
//! in the group name, such as the `/` in `substrate/bloom`, is rewritten
//! to `_` for the filename — in the [`RunReport`] schema shared with the
//! CLI's `--metrics` flag: one
//! `{id}_min_nanos` / `{id}_median_nanos` / `{id}_samples` counter
//! triple per benchmark, plus one phase span covering each benchmark's
//! measurement window.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use crate::harness::{fmt_secs, quick_mode};
use nsky_skyline::obs::{PhaseSpan, RunReport};
use nsky_skyline::Completion;

/// A named group of benchmarks, mirroring the Criterion group shape so
/// bench files read the same way.
#[derive(Debug)]
pub struct Group {
    name: String,
    samples: usize,
    /// Directory the machine-readable report lands in, when requested.
    json_dir: Option<PathBuf>,
    /// Clock origin for the report's phase spans.
    origin: Instant,
    /// One row per finished benchmark id.
    rows: Vec<BenchRow>,
}

/// Timing summary of one benchmark id, kept for the JSON report.
#[derive(Debug)]
struct BenchRow {
    id: String,
    min_nanos: u64,
    median_nanos: u64,
    samples: u64,
    start_nanos: u64,
    end_nanos: u64,
}

/// Samples requested via `NSKY_BENCH_SAMPLES`, if any.
fn env_samples() -> Option<usize> {
    std::env::var("NSKY_BENCH_SAMPLES").ok()?.parse().ok()
}

/// Report directory requested via `NSKY_BENCH_JSON`, if any.
fn env_json_dir() -> Option<PathBuf> {
    std::env::var_os("NSKY_BENCH_JSON").map(PathBuf::from)
}

/// Nanoseconds as a saturating `u64` (585 years of headroom).
fn nanos_u64(secs: f64) -> u64 {
    (secs * 1e9).min(u64::MAX as f64) as u64
}

/// Group name rendered safe for a filename: path separators and other
/// punctuation become `_` so `substrate/bloom` lands in
/// `BENCH_substrate_bloom.json` instead of a missing subdirectory.
fn file_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Group {
    /// Starts a group; the name prefixes every benchmark line.
    pub fn new(name: &str) -> Self {
        let samples = env_samples().unwrap_or(if quick_mode() { 3 } else { 10 });
        println!("# group {name}");
        Group {
            name: name.to_string(),
            samples: samples.max(1),
            json_dir: env_json_dir(),
            origin: Instant::now(),
            rows: Vec::new(),
        }
    }

    /// Requests a `BENCH_<group>.json` run report in `dir` when the
    /// group finishes. `NSKY_BENCH_JSON` takes precedence so CI can
    /// redirect every group to one collection directory.
    pub fn json_dir(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        if env_json_dir().is_none() {
            self.json_dir = Some(dir.into());
        }
        self
    }

    /// Records one finished benchmark for the JSON report.
    fn push_row(&mut self, id: &str, times: &[f64], start_nanos: u64) {
        if self.json_dir.is_none() {
            return;
        }
        self.rows.push(BenchRow {
            id: id.to_string(),
            min_nanos: nanos_u64(times[0]),
            median_nanos: nanos_u64(times[times.len() / 2]),
            samples: times.len() as u64,
            start_nanos,
            end_nanos: self.origin.elapsed().as_nanos() as u64,
        });
    }

    /// Overrides the sample count for this group (environment variables
    /// still take precedence, so CI can globally shrink sweeps).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if env_samples().is_none() && !quick_mode() {
            self.samples = n.max(1);
        }
        self
    }

    /// Runs one benchmark: one warm-up call, then `samples` timed calls.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) -> &mut Self {
        black_box(f());
        let span_start = self.origin.elapsed().as_nanos() as u64;
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        self.push_row(id, &times, span_start);
        println!(
            "{}/{id}: min {} median {} mean {} ({} samples)",
            self.name,
            fmt_secs(min),
            fmt_secs(median),
            fmt_secs(mean),
            self.samples
        );
        self
    }

    /// Runs one benchmark of a budgeted kernel: like [`Group::bench`],
    /// but `f` also returns the run's [`Completion`], which is appended
    /// to the report line. Anytime ablations use this to show whether a
    /// configuration finished or returned a partial answer — and the
    /// `budget_overhead` group pairs it with [`Group::bench`] to measure
    /// the cost of armed-but-untripped budget checks (<2% target).
    pub fn bench_budgeted<T>(
        &mut self,
        id: &str,
        mut f: impl FnMut() -> (T, Completion),
    ) -> &mut Self {
        let (_, completion) = black_box(f());
        let span_start = self.origin.elapsed().as_nanos() as u64;
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        self.push_row(id, &times, span_start);
        println!(
            "{}/{id}: min {} median {} mean {} ({} samples) [{completion}]",
            self.name,
            fmt_secs(min),
            fmt_secs(median),
            fmt_secs(mean),
            self.samples
        );
        self
    }

    /// Ends the group. Besides the blank separator line, writes the
    /// group's `BENCH_<group>.json` run report when a JSON directory was
    /// configured; an unwritable directory degrades to a stderr warning
    /// so a bench sweep never aborts over its own telemetry.
    pub fn finish(&mut self) {
        if let Some(dir) = self.json_dir.clone() {
            let kernel = format!("bench/{}", self.name);
            let mut report = RunReport::new(&kernel, 0, Completion::Complete);
            for row in self.rows.drain(..) {
                report
                    .counters
                    .push((format!("{}_min_nanos", row.id), row.min_nanos));
                report
                    .counters
                    .push((format!("{}_median_nanos", row.id), row.median_nanos));
                report
                    .counters
                    .push((format!("{}_samples", row.id), row.samples));
                report.phases.push(PhaseSpan {
                    name: row.id,
                    start_nanos: row.start_nanos,
                    end_nanos: row.end_nanos,
                });
            }
            let path = dir.join(format!("BENCH_{}.json", file_stem(&self.name)));
            let written = std::fs::create_dir_all(&dir)
                .and_then(|()| std::fs::File::create(&path))
                .and_then(|mut f| report.write_to(&mut f));
            match written {
                Ok(()) => println!("# wrote {}", path.display()),
                Err(e) => eprintln!("# bench json {}: {e}", path.display()),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = Group::new("selftest");
        g.sample_size(2);
        let mut calls = 0u32;
        g.bench("sum", || {
            calls += 1;
            (0..100).sum::<u64>()
        });
        // one warm-up + two samples
        assert_eq!(calls, 3);
        g.finish();
    }

    #[test]
    fn json_report_uses_the_shared_run_report_schema() {
        let dir = std::env::temp_dir().join(format!("nsky-bench-json-{}", std::process::id()));
        let mut g = Group::new("selftest_json");
        g.sample_size(2).json_dir(&dir);
        g.bench("sum", || (0..100).sum::<u64>());
        g.bench_budgeted("budgeted_sum", || {
            ((0..100).sum::<u64>(), Completion::Complete)
        });
        g.finish();
        let path = dir.join("BENCH_selftest_json.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let report = RunReport::from_json(&text).unwrap();
        assert_eq!(report.kernel, "bench/selftest_json");
        assert_eq!(report.counter("sum_samples"), Some(2));
        assert_eq!(report.counter("budgeted_sum_samples"), Some(2));
        assert!(report.counter("sum_min_nanos").is_some());
        assert!(report.counter("budgeted_sum_median_nanos").is_some());
        assert_eq!(report.phases.len(), 2);
        for p in &report.phases {
            assert!(p.end_nanos >= p.start_nanos, "{p:?}");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn json_filename_sanitizes_slashed_group_names() {
        let dir = std::env::temp_dir().join(format!("nsky-bench-slash-{}", std::process::id()));
        let mut g = Group::new("selftest/slashed");
        g.sample_size(1).json_dir(&dir);
        g.bench("sum", || (0..10).sum::<u64>());
        g.finish();
        let path = dir.join("BENCH_selftest_slashed.json");
        let report = RunReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // The kernel field keeps the exact group name; only the
        // filename is rewritten.
        assert_eq!(report.kernel, "bench/selftest/slashed");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn bench_budgeted_runs_and_reports_completion() {
        let mut g = Group::new("selftest_budgeted");
        g.sample_size(2);
        let mut calls = 0u32;
        g.bench_budgeted("sum", || {
            calls += 1;
            ((0..100).sum::<u64>(), Completion::Complete)
        });
        assert_eq!(calls, 3);
        g.finish();
    }
}
