//! Experiment implementations, one module per paper exhibit.
//!
//! Every function is deterministic given its arguments (generator seeds
//! are fixed in `nsky-datasets`), returns plain row structs, and is
//! exercised structurally by the integration tests in `tests/`.

mod case_study;
mod centrality_sweeps;
mod scalability;
mod skyline_compare;
mod synthetic_sizes;
mod table1;
mod topk_cliques;

pub use case_study::{fig13, Fig13Row};
pub use centrality_sweeps::{fig7, fig8, CentralitySweepRow};
pub use scalability::{fig10, fig11, fig12, table2, Axis, ScalabilityRow, Table2Row};
pub use skyline_compare::{fig2, fig3, fig4, fig5, Fig2Row, SkylineCompareRow};
pub use synthetic_sizes::{fig6_er, fig6_pl, Fig6Row};
pub use table1::{table1, Table1Row};
pub use topk_cliques::{fig9, Fig9Row};
