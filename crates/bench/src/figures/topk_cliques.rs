//! Fig. 9 — BaseTopkMCC vs NeiSkyTopkMCC on the Pokec and Orkut
//! stand-ins, varying `k ∈ {1, 3, 5, 7, 9}`.

use crate::harness::time;
use nsky_clique::{top_k_cliques, TopkMode};
use nsky_datasets::scalability_dataset;

/// One `(dataset, k)` point of Fig. 9.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Number of cliques requested.
    pub k: usize,
    /// `BaseTopkMCC` seconds.
    pub secs_base: f64,
    /// `NeiSkyTopkMCC` seconds (includes skyline maintenance).
    pub secs_neisky: f64,
    /// Per-round clique sizes from the base run.
    pub sizes_base: Vec<usize>,
    /// Per-round clique sizes from the pruned run.
    pub sizes_neisky: Vec<usize>,
}

/// Runs the Fig. 9 sweep.
pub fn fig9(quick: bool) -> Vec<Fig9Row> {
    let ks: &[usize] = if quick { &[1, 3] } else { &[1, 3, 5, 7, 9] };
    let datasets: &[&str] = if quick {
        &["Pokec"]
    } else {
        &["Pokec", "Orkut"]
    };
    let mut rows = Vec::new();
    for &name in datasets {
        let mut spec = scalability_dataset(name).expect("registered dataset");
        if quick {
            spec.n /= 4;
        }
        let g = spec.build();
        for &k in ks {
            let base = time(|| top_k_cliques(&g, k, TopkMode::Base));
            let pruned = time(|| top_k_cliques(&g, k, TopkMode::NeiSky));
            assert_eq!(
                base.value.cliques[0].len(),
                pruned.value.cliques[0].len(),
                "{name}: round-1 maximum cliques must agree"
            );
            rows.push(Fig9Row {
                dataset: spec.name,
                k,
                secs_base: base.seconds,
                secs_neisky: pruned.seconds,
                sizes_base: base.value.cliques.iter().map(Vec::len).collect(),
                sizes_neisky: pruned.value.cliques.iter().map(Vec::len).collect(),
            });
        }
    }
    rows
}
