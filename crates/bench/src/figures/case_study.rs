//! Fig. 13 — case studies on the Karate and Bombing networks.

use nsky_datasets::{bombing, karate};
use nsky_graph::{Graph, VertexId};
use nsky_skyline::{filter_refine_sky, RefineConfig};

/// One case-study row.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// Network name.
    pub network: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Skyline vertices, ascending.
    pub skyline: Vec<VertexId>,
    /// Skyline fraction reported by the paper for the original network.
    pub paper_fraction: f64,
    /// Average degree of skyline vertices.
    pub skyline_avg_degree: f64,
    /// Average degree of dominated vertices.
    pub dominated_avg_degree: f64,
}

fn study(network: &'static str, g: &Graph, paper_fraction: f64) -> Fig13Row {
    let r = filter_refine_sky(g, &RefineConfig::default());
    let mask = r.membership_mask();
    let avg = |members: bool| {
        let ids: Vec<_> = g
            .vertices()
            .filter(|&u| mask[u as usize] == members)
            .collect();
        if ids.is_empty() {
            0.0
        } else {
            ids.iter().map(|&u| g.degree(u)).sum::<usize>() as f64 / ids.len() as f64
        }
    };
    Fig13Row {
        network,
        n: g.num_vertices(),
        m: g.num_edges(),
        skyline: r.skyline,
        paper_fraction,
        skyline_avg_degree: avg(true),
        dominated_avg_degree: avg(false),
    }
}

/// Runs both Fig. 13 case studies. The paper reports 15/34 (44 %) for
/// Karate (reproduced exactly — the embedded graph is the original) and
/// 20/64 (31 %) for Bombing (approximated by the synthetic stand-in).
pub fn fig13() -> Vec<Fig13Row> {
    vec![
        study("Karate", &karate(), 15.0 / 34.0),
        study("Bombing", &bombing(), 20.0 / 64.0),
    ]
}
