//! Fig. 7 (Greedy++ vs NeiSkyGC) and Fig. 8 (Greedy-H vs NeiSkyGH) —
//! group centrality maximization with varying group size `k`.
//!
//! The paper sweeps `k ∈ {50 … 300}` on million-vertex graphs; at 1/100
//! dataset scale we sweep `k ∈ {5 … 30}` on subsampled stand-ins, which
//! preserves the `k/n` regime and therefore the evaluation-count ratios
//! the speedup comes from.

use crate::harness::time;
use nsky_centrality::greedy::{greedy_group, GreedyOptions};
use nsky_centrality::measure::{Closeness, GroupMeasure, Harmonic};
use nsky_centrality::neisky::nei_sky_group;
use nsky_datasets::paper_datasets;
use nsky_graph::Graph;

/// One `(dataset, k)` sweep point.
#[derive(Clone, Debug)]
pub struct CentralitySweepRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Group size.
    pub k: usize,
    /// Baseline (`Greedy++` / `Greedy-H`) seconds.
    pub secs_base: f64,
    /// Skyline-pruned seconds (includes skyline computation).
    pub secs_neisky: f64,
    /// Baseline score.
    pub score_base: f64,
    /// Pruned score.
    pub score_neisky: f64,
    /// Baseline gain evaluations.
    pub evals_base: u64,
    /// Pruned gain evaluations.
    pub evals_neisky: u64,
    /// Skyline size `r`.
    pub skyline_size: usize,
}

fn sweep<M: GroupMeasure>(measure: M, quick: bool) -> Vec<CentralitySweepRow> {
    let ks: &[usize] = if quick {
        &[5, 10]
    } else {
        &[5, 10, 15, 20, 25, 30]
    };
    let target_n = if quick { 600 } else { 3_000 };
    let mut rows = Vec::new();
    let mut specs = paper_datasets();
    if quick {
        specs.truncate(2);
    }
    for mut spec in specs {
        // Build the stand-in directly at sweep size: uniform vertex
        // sampling would orphan the leaf population (sampled leaves lose
        // their anchors and become isolated skyline vertices), destroying
        // exactly the structure the pruning exploits.
        spec.n = spec.n.min(target_n);
        let g = spec.build();
        for &k in ks {
            rows.push(run_point(&g, spec.name, measure, k));
        }
    }
    rows
}

fn run_point<M: GroupMeasure>(
    g: &Graph,
    dataset: &'static str,
    measure: M,
    k: usize,
) -> CentralitySweepRow {
    let base = time(|| greedy_group(g, measure, k, &GreedyOptions::optimized()));
    let pruned = time(|| nei_sky_group(g, measure, k, true));
    CentralitySweepRow {
        dataset,
        k,
        secs_base: base.seconds,
        secs_neisky: pruned.seconds,
        score_base: base.value.score,
        score_neisky: pruned.value.greedy.score,
        evals_base: base.value.gain_evaluations,
        evals_neisky: pruned.value.greedy.gain_evaluations,
        skyline_size: pruned.value.skyline_size,
    }
}

/// Fig. 7: group closeness maximization sweep.
pub fn fig7(quick: bool) -> Vec<CentralitySweepRow> {
    sweep(Closeness, quick)
}

/// Fig. 8: group harmonic maximization sweep.
pub fn fig8(quick: bool) -> Vec<CentralitySweepRow> {
    sweep(Harmonic, quick)
}
