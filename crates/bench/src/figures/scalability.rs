//! Fig. 10–12 and Table II — scalability on the LiveJournal stand-in,
//! varying the vertex fraction `n` and the edge-density fraction `ρ`.

use crate::harness::time;
use nsky_centrality::greedy::{greedy_group, GreedyOptions};
use nsky_centrality::measure::{Closeness, GroupMeasure, Harmonic};
use nsky_centrality::neisky::nei_sky_group;
use nsky_clique::{mc_brb, nei_sky_mc};
use nsky_datasets::scalability_dataset;
use nsky_graph::ops::{sample_edges, sample_vertices};
use nsky_graph::Graph;
use nsky_skyline::{base_sky, filter_refine_sky, RefineConfig};

/// Which parameter a scalability row varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Vertex-sampling fraction.
    N,
    /// Edge-sampling fraction (density ρ).
    Rho,
}

/// One scalability point.
#[derive(Clone, Debug)]
pub struct ScalabilityRow {
    /// Varied axis.
    pub axis: Axis,
    /// Fraction kept (0.2 … 1.0).
    pub fraction: f64,
    /// Baseline seconds.
    pub secs_base: f64,
    /// Improved-algorithm seconds.
    pub secs_fast: f64,
}

const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

fn subgraphs(base: &Graph, quick: bool) -> Vec<(Axis, f64, Graph)> {
    let fr: &[f64] = if quick { &FRACTIONS[3..] } else { &FRACTIONS };
    let mut out = Vec::new();
    for &f in fr {
        out.push((Axis::N, f, sample_vertices(base, f, 11).0));
        out.push((Axis::Rho, f, sample_edges(base, f, 12)));
    }
    out
}

fn livejournal(quick: bool, target_n: usize) -> Graph {
    let mut spec = scalability_dataset("LiveJournal").expect("registered dataset");
    spec.n = if quick { target_n / 4 } else { target_n };
    spec.build()
}

/// Fig. 10: `BaseSky` vs `FilterRefineSky` while varying `n` and `ρ`.
pub fn fig10(quick: bool) -> Vec<ScalabilityRow> {
    let g = livejournal(quick, 20_000);
    subgraphs(&g, quick)
        .into_iter()
        .map(|(axis, fraction, sub)| {
            let base = time(|| base_sky(&sub));
            let fast = time(|| filter_refine_sky(&sub, &RefineConfig::default()));
            assert_eq!(base.value.skyline, fast.value.skyline);
            ScalabilityRow {
                axis,
                fraction,
                secs_base: base.seconds,
                secs_fast: fast.seconds,
            }
        })
        .collect()
}

fn centrality_scalability<M: GroupMeasure>(measure: M, quick: bool) -> Vec<ScalabilityRow> {
    let k = 10;
    let g = livejournal(quick, 6_000);
    subgraphs(&g, quick)
        .into_iter()
        .map(|(axis, fraction, sub)| {
            let base = time(|| greedy_group(&sub, measure, k, &GreedyOptions::optimized()));
            let fast = time(|| nei_sky_group(&sub, measure, k, true));
            ScalabilityRow {
                axis,
                fraction,
                secs_base: base.seconds,
                secs_fast: fast.seconds,
            }
        })
        .collect()
}

/// Fig. 11: `Greedy++` vs `NeiSkyGC` scalability.
pub fn fig11(quick: bool) -> Vec<ScalabilityRow> {
    centrality_scalability(Closeness, quick)
}

/// Fig. 12: `Greedy-H` vs `NeiSkyGH` scalability.
pub fn fig12(quick: bool) -> Vec<ScalabilityRow> {
    centrality_scalability(Harmonic, quick)
}

/// One Table II row: `MC-BRB` vs `NeiSkyMC` runtimes.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Varied axis.
    pub axis: Axis,
    /// Fraction kept.
    pub fraction: f64,
    /// `MC-BRB` seconds.
    pub secs_mcbrb: f64,
    /// `NeiSkyMC` seconds (includes skyline computation).
    pub secs_neisky: f64,
    /// Maximum clique size found (agreement asserted).
    pub omega: usize,
}

/// Table II: maximum-clique scalability on the LiveJournal stand-in.
pub fn table2(quick: bool) -> Vec<Table2Row> {
    let g = livejournal(quick, 8_000);
    subgraphs(&g, quick)
        .into_iter()
        .map(|(axis, fraction, sub)| {
            let base = time(|| mc_brb(&sub));
            let fast = time(|| nei_sky_mc(&sub));
            assert_eq!(base.value.0.len(), fast.value.clique.len());
            Table2Row {
                axis,
                fraction,
                secs_mcbrb: base.seconds,
                secs_neisky: fast.seconds,
                omega: base.value.0.len(),
            }
        })
        .collect()
}
