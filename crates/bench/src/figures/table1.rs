//! Table I — dataset statistics (original vs scaled stand-in).

use nsky_datasets::paper_datasets;
use nsky_graph::stats::graph_stats;

/// One Table I row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Dataset name.
    pub name: &'static str,
    /// Domain description.
    pub description: &'static str,
    /// Original `(n, m, dmax)` from the paper.
    pub original: (usize, usize, usize),
    /// Stand-in `(n, m, dmax)` actually generated.
    pub standin: (usize, usize, usize),
}

/// Builds every stand-in and reports both statistics columns.
pub fn table1() -> Vec<Table1Row> {
    paper_datasets()
        .into_iter()
        .map(|spec| {
            let g = spec.build();
            let s = graph_stats(&g);
            Table1Row {
                name: spec.name,
                description: spec.description,
                original: (spec.original_n, spec.original_m, spec.original_dmax),
                standin: (s.n, s.m, s.dmax),
            }
        })
        .collect()
}
