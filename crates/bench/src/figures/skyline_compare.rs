//! Fig. 2 (special families), Fig. 3 (runtime), Fig. 4 (memory) and
//! Fig. 5 (set sizes) — the skyline-algorithm comparison.

use crate::harness::time;
use nsky_datasets::{paper_datasets, DatasetSpec};
use nsky_graph::generators::special;
use nsky_graph::Graph;
use nsky_setjoin::{lc_join_cost_estimate, lc_join_memory, lc_join_skyline};
use nsky_skyline::{
    base_sky, cset_sky, filter_phase, filter_refine_sky, memory, two_hop_sky, RefineConfig,
};

/// One Fig. 2 row: skyline and candidate sizes on a special family.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Family name.
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// `|R|`.
    pub skyline: usize,
    /// `|C|`.
    pub candidates: usize,
    /// The closed-form value the paper states for `|R| = |C|`.
    pub expected: usize,
}

/// Fig. 2: clique, complete binary tree, circle, path.
pub fn fig2() -> Vec<Fig2Row> {
    let levels = 5u32;
    let families: Vec<(&'static str, Graph, usize)> = vec![
        ("clique", special::clique(32), 1),
        (
            "binary-tree",
            special::complete_binary_tree(levels),
            special::binary_tree_internal_count(levels),
        ),
        ("circle", special::cycle(32), 32),
        ("path", special::path(32), 30),
    ];
    families
        .into_iter()
        .map(|(family, g, expected)| {
            let r = filter_refine_sky(&g, &RefineConfig::default());
            Fig2Row {
                family,
                n: g.num_vertices(),
                skyline: r.len(),
                candidates: r.candidates.as_ref().map_or(0, |c| c.len()),
                expected,
            }
        })
        .collect()
}

/// One dataset row of the Fig. 3/4/5 comparison. A seconds value of
/// `f64::INFINITY` (paired with a `usize::MAX` memory value) means the
/// algorithm was skipped because its estimated footprint exceeded the
/// budget — the paper's "INF" entries for LC-Join/Base2Hop on WikiTalk.
#[derive(Clone, Debug)]
pub struct SkylineCompareRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Stand-in vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// LC-Join seconds (or `INFINITY`).
    pub secs_lc_join: f64,
    /// `BaseSky` seconds.
    pub secs_base: f64,
    /// `Base2Hop` seconds (or `INFINITY`).
    pub secs_two_hop: f64,
    /// `BaseCSet` seconds.
    pub secs_cset: f64,
    /// `FilterRefineSky` seconds.
    pub secs_refine: f64,
    /// LC-Join index bytes (or `usize::MAX`).
    pub mem_lc_join: usize,
    /// `BaseSky` bytes.
    pub mem_base: usize,
    /// `Base2Hop` bytes (or `usize::MAX`).
    pub mem_two_hop: usize,
    /// `BaseCSet` bytes.
    pub mem_cset: usize,
    /// `FilterRefineSky` bytes.
    pub mem_refine: usize,
    /// `|R|` (Fig. 5).
    pub skyline: usize,
    /// `|C|` (Fig. 5).
    pub candidates: usize,
}

/// Budget beyond which memory-hungry baselines are skipped ("INF").
const INF_BUDGET_BYTES: u64 = 1 << 31; // 2 GiB

fn fig3_specs(quick: bool) -> Vec<DatasetSpec> {
    let mut specs = paper_datasets();
    for s in &mut specs {
        // The registry defaults to 1/100 scale (fast unit tests); the
        // runtime/memory comparison uses 1/25 so the asymptotic gaps
        // have room to show.
        s.n = s.original_n / if quick { 400 } else { 25 };
    }
    if quick {
        specs.truncate(2);
    }
    specs
}

/// Runs all five skyline algorithms on every Table I stand-in
/// (`quick` restricts to two small datasets).
pub fn fig3(quick: bool) -> Vec<SkylineCompareRow> {
    fig3_specs(quick)
        .into_iter()
        .map(|spec| {
            let g = spec.build();
            let refine = time(|| filter_refine_sky(&g, &RefineConfig::default()));
            let base = time(|| base_sky(&g));
            let cset = time(|| cset_sky(&g));
            assert_eq!(base.value.skyline, refine.value.skyline, "{}", spec.name);
            assert_eq!(base.value.skyline, cset.value.skyline, "{}", spec.name);

            // LC-Join: skip when the join output estimate blows the
            // budget (entries ≈ 4 bytes each).
            let (secs_lc, mem_lc) = if lc_join_cost_estimate(&g) * 4 > INF_BUDGET_BYTES {
                (f64::INFINITY, usize::MAX)
            } else {
                let lc = time(|| lc_join_skyline(&g));
                assert_eq!(lc.value.skyline, base.value.skyline, "{}", spec.name);
                // The baseline's memory includes its Q-side prefix tree.
                (lc.seconds, lc_join_memory(&g))
            };

            // Base2Hop: skip when the materialization bound blows the
            // budget.
            let (secs_two, mem_two) = if memory::two_hop_upper_bound_bytes(&g) > INF_BUDGET_BYTES {
                (f64::INFINITY, usize::MAX)
            } else {
                let two = time(|| two_hop_sky(&g));
                assert_eq!(two.value.skyline, base.value.skyline, "{}", spec.name);
                (two.seconds, two.value.stats.peak_bytes)
            };

            let candidates = refine.value.candidates.as_ref().map_or(0, |c| c.len());
            SkylineCompareRow {
                dataset: spec.name,
                n: g.num_vertices(),
                m: g.num_edges(),
                secs_lc_join: secs_lc,
                secs_base: base.seconds,
                secs_two_hop: secs_two,
                secs_cset: cset.seconds,
                secs_refine: refine.seconds,
                mem_lc_join: mem_lc,
                mem_base: memory::base_sky_memory(&g).working_bytes,
                mem_two_hop: mem_two,
                mem_cset: memory::cset_memory(&g, candidates).working_bytes,
                mem_refine: refine.value.stats.peak_bytes,
                skyline: refine.value.len(),
                candidates,
            }
        })
        .collect()
}

/// Fig. 4 is the memory columns of [`fig3`]; alias for harness clarity.
pub fn fig4(quick: bool) -> Vec<SkylineCompareRow> {
    fig3(quick)
}

/// Fig. 5 is the size columns of [`fig3`], computed cheaply (sizes only,
/// no baseline timing).
pub fn fig5(quick: bool) -> Vec<SkylineCompareRow> {
    fig3_specs(quick)
        .into_iter()
        .map(|spec| {
            let g = spec.build();
            let c = filter_phase(&g);
            let r = filter_refine_sky(&g, &RefineConfig::default());
            SkylineCompareRow {
                dataset: spec.name,
                n: g.num_vertices(),
                m: g.num_edges(),
                secs_lc_join: 0.0,
                secs_base: 0.0,
                secs_two_hop: 0.0,
                secs_cset: 0.0,
                secs_refine: 0.0,
                mem_lc_join: 0,
                mem_base: 0,
                mem_two_hop: 0,
                mem_cset: 0,
                mem_refine: 0,
                skyline: r.len(),
                candidates: c.candidates.len(),
            }
        })
        .collect()
}
