//! Fig. 6 — `|R|`, `|C|`, `|V|` on synthetic ER and power-law graphs.

use nsky_graph::generators::{erdos_renyi_scaled, power_law_configuration};
use nsky_skyline::{filter_refine_sky, RefineConfig};

/// One sweep point of Fig. 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// The varied parameter (`Δp` for ER, `β` for PL).
    pub parameter: f64,
    /// `|V|`.
    pub total: usize,
    /// `|C|`.
    pub candidates: usize,
    /// `|R|`.
    pub skyline: usize,
}

fn measure(g: &nsky_graph::Graph, parameter: f64) -> Fig6Row {
    let r = filter_refine_sky(g, &RefineConfig::default());
    Fig6Row {
        parameter,
        total: g.num_vertices(),
        candidates: r.candidates.as_ref().map_or(0, |c| c.len()),
        skyline: r.len(),
    }
}

/// Fig. 6(a): ER graphs with `p = Δp · ln(n)/n`, `Δp ∈ {0.2 … 1.0}`.
///
/// Paper n = 1e5; we default to `n = 20_000` (quick: 4 000).
pub fn fig6_er(quick: bool) -> Vec<Fig6Row> {
    let n = if quick { 4_000 } else { 20_000 };
    [0.2, 0.4, 0.6, 0.8, 1.0]
        .iter()
        .map(|&dp| measure(&erdos_renyi_scaled(n, dp, 61), dp))
        .collect()
}

/// Fig. 6(b): power-law graphs with `β ∈ {2.6 … 3.4}` — exact power-law
/// degree sequences with `dmin = 1` (the NetworKit semantics the paper
/// uses), so most vertices have degree 1 and are dominated.
pub fn fig6_pl(quick: bool) -> Vec<Fig6Row> {
    let n = if quick { 4_000 } else { 20_000 };
    [2.6, 2.8, 3.0, 3.2, 3.4]
        .iter()
        .map(|&beta| measure(&power_law_configuration(n, beta, 1, 62), beta))
        .collect()
}
