//! Per-vertex neighborhood bloom filters — the refine-phase accelerator of
//! `FilterRefineSky`.

use crate::hash::mix32;
use nsky_graph::{Graph, VertexId};

/// Sizing policy for the per-vertex filters.
///
/// The paper sizes each filter by `dmax` ("BK is the number of bytes
/// determined by dmax"); the candidate filters then occupy `|C| · dmax`
/// bits — the `O(m + |C|·dmax)` space term of Theorem 3. The
/// `bits_per_element` knob exists for the bloom-width ablation bench.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BloomConfig {
    /// Filter width in bits; always a power of two ≥ 64.
    pub bits: usize,
}

impl BloomConfig {
    /// Maximum filter width (bits). The paper sizes filters purely by
    /// `dmax`, which on hub-heavy graphs (WikiTalk: `dmax ≈ 10^5`) makes
    /// every filter kilobytes wide and lets allocation dominate the
    /// refine phase. Capping the width only raises the false-positive
    /// rate of the *pre*-checks — the exact `NBRcheck` keeps the result
    /// correct — and the `ablation_bloom` bench quantifies the trade.
    pub const MAX_BITS: usize = 8 * 1024;

    /// Paper-style sizing: the filter width is the next power of two of
    /// `dmax · bits_per_element`, clamped to `[64, MAX_BITS]` bits.
    ///
    /// `bits_per_element = 1.0` reproduces the paper's `dmax`-proportional
    /// sizing; larger multipliers trade memory for a lower false-positive
    /// rate (see the `ablation_bloom` bench).
    pub fn for_max_degree(dmax: usize, bits_per_element: f64) -> Self {
        assert!(bits_per_element > 0.0, "multiplier must be positive");
        // CAST: degrees stay far below 2^53; the ceil result is clamped
        // to MAX_BITS right after, so a saturating cast is harmless.
        let want = ((dmax as f64) * bits_per_element).ceil() as usize;
        BloomConfig {
            bits: want.next_power_of_two().clamp(64, Self::MAX_BITS),
        }
    }

    /// Default paper-style sizing (1 bit per potential neighbor).
    pub fn paper_default(dmax: usize) -> Self {
        Self::for_max_degree(dmax, 1.0)
    }

    fn words(&self) -> usize {
        self.bits / 64
    }
}

/// Single-hash bloom filters over the open neighborhoods of a chosen set
/// of vertices, packed into one allocation.
///
/// Construction inserts every `v ∈ N(u)` by setting bit
/// `mix32(v) mod bits` of `u`'s filter — the 64-bit generalization of the
/// paper's `BF[h(v)>>5 % BK] |= 1 << (h(v) & 31)`.
///
/// # Examples
///
/// ```
/// use nsky_graph::Graph;
/// use nsky_bloom::{BloomConfig, NeighborhoodFilters};
///
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3)]);
/// let f = NeighborhoodFilters::build(&g, g.vertices(), BloomConfig::paper_default(g.max_degree()));
/// // N(0) = {1,2} ⊆ N(1) = {0,2,3}? No — and the filter can prove the
/// // *negative* only; here bit(1) is set for 0 but 1 ∉ N(1).
/// assert!(!f.filter_subset(0, 1) || g.neighbors(0).iter().all(|&x| g.has_edge(1, x)));
/// ```
#[derive(Clone, Debug)]
pub struct NeighborhoodFilters {
    /// Packed filter words: slot `s` occupies
    /// `words[s * wpf .. (s + 1) * wpf]`.
    words: Vec<u64>,
    /// `slot[u]` is `u`'s filter slot, or `u32::MAX` if `u` has none.
    slot: Vec<u32>,
    /// Words per filter.
    wpf: usize,
    /// Bit mask (`bits − 1`).
    mask: u64,
}

impl NeighborhoodFilters {
    /// Builds filters for `members` (typically the candidate set `C`).
    pub fn build<I>(g: &Graph, members: I, cfg: BloomConfig) -> Self
    where
        I: IntoIterator<Item = VertexId>,
    {
        let wpf = cfg.words();
        let mask = (cfg.bits - 1) as u64;
        let mut slot = vec![u32::MAX; g.num_vertices()];
        let mut count = 0u32;
        let members: Vec<VertexId> = members
            .into_iter()
            .inspect(|&u| {
                debug_assert!((u as usize) < g.num_vertices());
                debug_assert_eq!(slot[u as usize], u32::MAX, "duplicate member {u}");
                slot[u as usize] = count;
                count += 1;
            })
            .collect();
        let mut words = vec![0u64; count as usize * wpf];
        for &u in &members {
            let base = slot[u as usize] as usize * wpf;
            for &v in g.neighbors(u) {
                let h = mix32(v) & mask;
                words[base + (h >> 6) as usize] |= 1u64 << (h & 63);
            }
        }
        NeighborhoodFilters {
            words,
            slot,
            wpf,
            mask,
        }
    }

    /// Whether `u` has a filter.
    #[inline]
    pub fn has_filter(&self, u: VertexId) -> bool {
        self.slot[u as usize] != u32::MAX
    }

    #[inline]
    fn filter(&self, u: VertexId) -> &[u64] {
        let s = self.slot[u as usize] as usize;
        debug_assert_ne!(self.slot[u as usize], u32::MAX, "no filter for {u}");
        &self.words[s * self.wpf..(s + 1) * self.wpf]
    }

    /// Whole-filter pre-check: `BF(u) & BF(w) == BF(u)`.
    ///
    /// Returns `false` only when `N(u) ⊄ N(w)` is *certain*; `true` may be
    /// a false positive (paper line 14 of Algorithm 3).
    #[inline]
    pub fn filter_subset(&self, u: VertexId, w: VertexId) -> bool {
        self.filter(u)
            .iter()
            .zip(self.filter(w))
            .all(|(&a, &b)| a & b == a)
    }

    /// `BFcheck`: whether `x` *may* be in `N(w)` per `w`'s filter.
    ///
    /// A `false` answer is exact (`x ∉ N(w)`); a `true` answer needs the
    /// exact `NBRcheck` against the adjacency list.
    #[inline]
    pub fn maybe_contains(&self, w: VertexId, x: VertexId) -> bool {
        let h = mix32(x) & self.mask;
        self.filter(w)[(h >> 6) as usize] & (1u64 << (h & 63)) != 0
    }

    /// Filter width in bits.
    pub fn bits(&self) -> usize {
        self.wpf * 64
    }

    /// Words per filter — the cost of one [`filter_subset`]
    /// (callers use this to decide between the whole-filter compare and
    /// per-element [`maybe_contains`] probes).
    ///
    /// [`filter_subset`]: Self::filter_subset
    /// [`maybe_contains`]: Self::maybe_contains
    pub fn words_per_filter(&self) -> usize {
        self.wpf
    }

    /// Total resident bytes (the Fig. 4 memory accounting term).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8 + self.slot.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_graph::generators::chung_lu_power_law;

    #[test]
    fn config_sizing() {
        assert_eq!(BloomConfig::for_max_degree(0, 1.0).bits, 64);
        assert_eq!(BloomConfig::for_max_degree(100, 1.0).bits, 128);
        assert_eq!(BloomConfig::for_max_degree(100, 4.0).bits, 512);
        assert_eq!(BloomConfig::paper_default(1000).bits, 1024);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn config_rejects_zero_multiplier() {
        BloomConfig::for_max_degree(10, 0.0);
    }

    #[test]
    fn no_false_negatives_on_membership() {
        let g = chung_lu_power_law(500, 2.7, 8.0, 3);
        let cfg = BloomConfig::paper_default(g.max_degree());
        let f = NeighborhoodFilters::build(&g, g.vertices(), cfg);
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                assert!(f.maybe_contains(u, v), "false negative ({u},{v})");
            }
        }
    }

    #[test]
    fn no_false_negatives_on_subset() {
        // Whenever N(u) ⊆ N(w) truly holds, the word-level pre-check must
        // pass.
        let g = chung_lu_power_law(300, 2.7, 6.0, 5);
        let cfg = BloomConfig::paper_default(g.max_degree());
        let f = NeighborhoodFilters::build(&g, g.vertices(), cfg);
        let mut checked = 0;
        for u in g.vertices() {
            for w in g.vertices() {
                if u == w {
                    continue;
                }
                let truly = g
                    .neighbors(u)
                    .iter()
                    .all(|&x| g.neighbors(w).binary_search(&x).is_ok());
                if truly {
                    assert!(f.filter_subset(u, w), "false negative subset {u}⊆{w}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "test vacuous: no true inclusions in sample");
    }

    #[test]
    fn negative_answers_are_exact() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (3, 4)]);
        let f = NeighborhoodFilters::build(&g, g.vertices(), BloomConfig { bits: 4096 });
        // With a wide filter, distinct singletons should separate.
        assert!(!f.maybe_contains(3, 1), "bit for 1 not set in N(3)={{4}}");
        assert!(!f.filter_subset(0, 3));
    }

    #[test]
    fn partial_membership_build() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let f = NeighborhoodFilters::build(&g, [1, 2], BloomConfig { bits: 64 });
        assert!(f.has_filter(1));
        assert!(f.has_filter(2));
        assert!(!f.has_filter(0));
        assert!(f.size_bytes() >= 2 * 8);
    }

    #[test]
    fn empty_neighborhood_filter_is_subset_of_all() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let f = NeighborhoodFilters::build(&g, g.vertices(), BloomConfig { bits: 64 });
        assert!(f.filter_subset(2, 0));
        assert!(f.filter_subset(2, 1));
    }
}
