//! False-positive-rate analysis for the single-hash neighborhood filters
//! (the paper's Lemma 2).

/// Lemma 2: the probability that the filter-based subset test
/// `N(u) ⊆ N(v)` answers "maybe" although the inclusion is false, given
/// filter width `b = dmax` bits, is
///
/// `(1 − (1 − 1/dmax)^{deg(v)})^{|N(u) \ N(v)|}`
///
/// — each of the `|N(u) \ N(v)|` offending neighbors must collide with one
/// of `deg(v)` occupied positions.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn subset_false_positive_probability(bits: usize, deg_v: u32, uncovered: u32) -> f64 {
    assert!(bits > 0, "filter width must be positive");
    if uncovered == 0 {
        return 1.0; // inclusion actually holds: "maybe" is correct.
    }
    // CAST: filter widths are vertex degrees, far below 2^53.
    let occupied = 1.0 - (1.0 - 1.0 / bits as f64).powf(f64::from(deg_v));
    occupied.powf(f64::from(uncovered))
}

/// Expected number of exact `NBRcheck` probes saved by the whole-filter
/// pre-check for a non-included pair: `deg(u) · (1 − p_fp)` probes are
/// avoided when the pre-check rejects.
pub fn expected_probes_saved(bits: usize, deg_u: u32, deg_v: u32, uncovered: u32) -> f64 {
    let p_fp = subset_false_positive_probability(bits, deg_v, uncovered);
    f64::from(deg_u) * (1.0 - p_fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BloomConfig, NeighborhoodFilters};
    use nsky_graph::generators::erdos_renyi;

    #[test]
    fn probability_basics() {
        // Zero uncovered neighbors: the test must pass (probability 1).
        assert_eq!(subset_false_positive_probability(128, 10, 0), 1.0);
        // More uncovered neighbors → smaller FP probability.
        let p1 = subset_false_positive_probability(128, 10, 1);
        let p3 = subset_false_positive_probability(128, 10, 3);
        assert!(p3 < p1);
        assert!((0.0..=1.0).contains(&p1));
        // Wider filter → smaller FP probability.
        let narrow = subset_false_positive_probability(64, 10, 2);
        let wide = subset_false_positive_probability(1024, 10, 2);
        assert!(wide < narrow);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        subset_false_positive_probability(0, 1, 1);
    }

    #[test]
    fn empirical_fp_rate_matches_lemma_order_of_magnitude() {
        // Measure the single-neighbor membership FP rate and compare with
        // the occupancy term of Lemma 2.
        let g = erdos_renyi(400, 0.05, 9);
        let bits = 256;
        let f = NeighborhoodFilters::build(&g, g.vertices(), BloomConfig { bits });
        let mut fp = 0usize;
        let mut trials = 0usize;
        for u in g.vertices().take(100) {
            for x in g.vertices() {
                if x == u || g.has_edge(u, x) {
                    continue;
                }
                trials += 1;
                if f.maybe_contains(u, x) {
                    fp += 1;
                }
            }
        }
        let measured = fp as f64 / trials as f64;
        // Expected occupancy for deg ≈ 20 over 256 bits ≈ 7.5 %.
        let avg_deg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        let predicted = 1.0 - (1.0 - 1.0 / bits as f64).powf(avg_deg);
        assert!(
            measured < predicted * 3.0 + 0.02,
            "measured {measured:.4} vs predicted {predicted:.4}"
        );
    }

    #[test]
    fn probes_saved_monotone_in_degree() {
        let a = expected_probes_saved(128, 5, 10, 2);
        let b = expected_probes_saved(128, 50, 10, 2);
        assert!(b > a);
    }
}
