//! A fixed-capacity bit set over `u64` words.

/// Fixed-capacity bit set.
///
/// Used directly by tests/ablations and as the storage idiom of
/// [`crate::NeighborhoodFilters`] (which packs many same-width sets into
/// one allocation instead of one `BitSet` each).
///
/// # Examples
///
/// ```
/// use nsky_bloom::BitSet;
///
/// let mut a = BitSet::new(128);
/// a.insert(3);
/// a.insert(70);
/// assert!(a.contains(3) && !a.contains(4));
/// assert_eq!(a.count_ones(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`. Returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears all bits (keeps capacity).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether `self ⊆ other` bit-wise (`self & other == self`).
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & b == a)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Size of the intersection.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterator over set bit positions, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(!s.contains(5));
        assert!(!s.contains(1_000)); // out of range is just "absent"
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn subset_and_union() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in [1, 65, 130] {
            a.insert(i);
            b.insert(i);
        }
        b.insert(199);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        a.union_with(&b);
        assert!(b.is_subset_of(&a));
        assert_eq!(a.intersection_count(&b), 4);
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(300);
        for i in [255, 0, 64, 63, 299] {
            s.insert(i);
        }
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 63, 64, 255, 299]);
        assert_eq!(s.count_ones(), 5);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::new(64);
        assert!(s.is_empty());
        s.insert(63);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 64);
    }

    #[test]
    fn empty_subset_of_everything() {
        let a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.insert(3);
        assert!(a.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
    }
}
