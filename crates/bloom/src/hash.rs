//! The single hash function used by the neighborhood filters.

/// Mixes a 32-bit vertex id into a well-distributed 64-bit value
/// (the finalizer of SplitMix64 applied to the id).
///
/// The paper uses one cheap bit-wise hash (following Wei et al.'s
/// reachability labeling); a multiply–xor–shift finalizer is the modern
/// equivalent: two multiplications, three shifts, no table lookups.
///
/// # Examples
///
/// ```
/// use nsky_bloom::mix32;
///
/// assert_eq!(mix32(7), mix32(7));
/// assert_ne!(mix32(7), mix32(8));
/// ```
#[inline]
pub fn mix32(x: u32) -> u64 {
    let mut z = (x as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bits_are_well_distributed() {
        // Consecutive ids should not collide in their low 6 bits too often
        // (those bits pick the bit-in-word position).
        let mut buckets = [0u32; 64];
        for x in 0..64_000u32 {
            buckets[(mix32(x) & 63) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "skewed low bits: {b}");
        }
    }

    #[test]
    fn word_index_bits_are_well_distributed() {
        let mut buckets = [0u32; 16];
        for x in 0..16_000u32 {
            buckets[((mix32(x) >> 6) & 15) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "skewed word bits: {b}");
        }
    }
}
