//! A classic k-hash bloom filter, for comparison with the paper's
//! single-hash variant (used by the `ablation_bloom` bench and by tests).

use crate::hash::mix32;

/// Classic bloom filter over `u32` elements with `k` derived hash
/// functions (double hashing: `h_i = h1 + i·h2`).
///
/// # Examples
///
/// ```
/// use nsky_bloom::ClassicBloom;
///
/// let mut b = ClassicBloom::new(1024, 3);
/// b.insert(42);
/// assert!(b.maybe_contains(42));
/// ```
#[derive(Clone, Debug)]
pub struct ClassicBloom {
    words: Vec<u64>,
    mask: u64,
    k: u32,
    inserted: usize,
}

impl ClassicBloom {
    /// A filter with `bits` capacity (rounded up to a power of two, ≥ 64)
    /// and `k ≥ 1` hash functions.
    pub fn new(bits: usize, k: u32) -> Self {
        assert!(k >= 1, "need at least one hash function");
        let bits = bits.next_power_of_two().max(64);
        ClassicBloom {
            words: vec![0; bits / 64],
            mask: (bits - 1) as u64,
            k,
            inserted: 0,
        }
    }

    #[inline]
    fn positions(&self, x: u32) -> impl Iterator<Item = u64> + '_ {
        let h = mix32(x);
        let h1 = h & self.mask;
        let h2 = ((h >> 32) | 1) & self.mask; // odd increment
        (0..self.k as u64).map(move |i| (h1 + i * h2) & self.mask)
    }

    /// Inserts an element.
    pub fn insert(&mut self, x: u32) {
        let positions: Vec<u64> = self.positions(x).collect();
        for p in positions {
            self.words[(p >> 6) as usize] |= 1u64 << (p & 63);
        }
        self.inserted += 1;
    }

    /// Membership test; `false` is exact, `true` may be a false positive.
    pub fn maybe_contains(&self, x: u32) -> bool {
        self.positions(x)
            .all(|p| self.words[(p >> 6) as usize] & (1u64 << (p & 63)) != 0)
    }

    /// Number of `insert` calls so far.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// The textbook false-positive estimate
    /// `(1 − e^{−k·n/m})^k` for the current fill.
    pub fn estimated_fp_rate(&self) -> f64 {
        let m = (self.words.len() * 64) as f64;
        let n = self.inserted as f64;
        let k = self.k as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = ClassicBloom::new(2048, 4);
        for x in 0..200 {
            b.insert(x * 7);
        }
        for x in 0..200 {
            assert!(b.maybe_contains(x * 7));
        }
        assert_eq!(b.inserted(), 200);
    }

    #[test]
    fn fp_rate_is_low_when_underfilled() {
        let mut b = ClassicBloom::new(1 << 14, 4);
        for x in 0..100 {
            b.insert(x);
        }
        let fps = (10_000..20_000).filter(|&x| b.maybe_contains(x)).count();
        assert!(fps < 50, "too many false positives: {fps}");
        assert!(b.estimated_fp_rate() < 0.01);
    }

    #[test]
    fn more_hashes_fewer_fps_at_low_fill() {
        let mut one = ClassicBloom::new(4096, 1);
        let mut four = ClassicBloom::new(4096, 4);
        for x in 0..150 {
            one.insert(x);
            four.insert(x);
        }
        let fp = |b: &ClassicBloom| (100_000..110_000).filter(|&x| b.maybe_contains(x)).count();
        assert!(fp(&four) <= fp(&one));
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn zero_hashes_rejected() {
        ClassicBloom::new(64, 0);
    }
}
