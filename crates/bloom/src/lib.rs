//! # nsky-bloom
//!
//! Bit-set and bloom-filter substrate for the neighborhood-skyline library.
//!
//! The refine phase of `FilterRefineSky` (paper Sec. III-B.2) tests
//! `N(u) ⊆ N(w)` for many 2-hop pairs. It first compares whole
//! neighborhood *bloom filters* (`BF(u) & BF(w) == BF(u)` — if any bit of
//! `u` is missing from `w`, inclusion is impossible: bloom filters have no
//! false negatives), then membership-tests individual neighbors
//! (`BFcheck`), falling back to the exact adjacency list (`NBRcheck`) only
//! when the bit test passes.
//!
//! Matching the paper (and its reference \[2\]), [`NeighborhoodFilters`]
//! uses a **single** hash function and word-addressed bit setting —
//! the paper's `BF[h(v)>>5 % BK] |= 1 << (h(v) & 31)` generalized to
//! 64-bit words. A classic k-hash [`ClassicBloom`] is provided for
//! comparison and for the Lemma 2 false-positive-rate analysis in
//! [`analysis`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod bitset;
mod classic;
mod filter;
mod hash;

pub use bitset::BitSet;
pub use classic::ClassicBloom;
pub use filter::{BloomConfig, NeighborhoodFilters};
pub use hash::mix32;
