//! `NeiSkyGC` / `NeiSkyGH` — greedy group-centrality maximization
//! restricted to the neighborhood skyline (paper Algorithm 4 and
//! Sec. IV-B.2).
//!
//! Soundness comes from Lemma 3/4: if `v ≤ u` then for any group `S` not
//! containing them, `GC(S ∪ {u}) ≥ GC(S ∪ {v})` (same for `GH`), so
//! restricting the per-round `argmax` to skyline vertices loses nothing:
//! any dominated candidate has a skyline dominator with at least its
//! marginal gain. (The intuition: a shortest path ending in `v` can be
//! rerouted to end in `u` with the same length because every neighbor of
//! `v` also neighbors `u`.)

use crate::greedy::{
    greedy_leg, record_greedy_counters, valid_greedy_state, GreedyOptions, GreedyOutcome,
    GreedyState,
};
use crate::measure::{Closeness, GroupMeasure, Harmonic};
use nsky_graph::Graph;
use nsky_skyline::budget::ExecutionBudget;
use nsky_skyline::exec::{self, ExecutionContext};
use nsky_skyline::snapshot::{
    Checkpointer, KernelId, KernelState, Reader, RecoveryError, ResumableRun, Snapshot, Writer,
};
use nsky_skyline::{filter_refine_sky_budgeted, RefineConfig};

/// Result of a skyline-pruned maximization, with the skyline size the
/// evaluation-count formula `k(2r − k + 1)/2` depends on.
#[derive(Clone, Debug)]
pub struct NeiSkyOutcome {
    /// The greedy outcome over the restricted pool.
    pub greedy: GreedyOutcome,
    /// `r = |R|`, the skyline size.
    pub skyline_size: usize,
}

/// Generic skyline-restricted greedy: computes `R` with
/// `FilterRefineSky`, then runs the configured greedy engine over `R`.
pub fn nei_sky_group<M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    lazy: bool,
) -> NeiSkyOutcome {
    nei_sky_group_with(g, measure, k, lazy, &mut ExecutionContext::new()).outcome
}

/// The one entry point: [`nei_sky_group`] under an [`ExecutionContext`]
/// — budget, cancellation, checkpoint/resume and observability in any
/// combination. The recorder sees a `"skyline"` span around the pool
/// computation, a `"greedy"` span around the selection rounds, and a
/// bulk flush of the greedy evaluation counters plus the skyline size
/// (as `candidates_emitted`) at exit. One budget is shared by the
/// skyline computation and the greedy engine: a trip during the skyline
/// phase restricts the pool to the partially verified skyline (still
/// valid seeds, possibly missing the best ones); the sticky trip then
/// stops the greedy engine within one check interval, so the outcome
/// carries the trip status and whatever greedy prefix was committed.
/// When checkpointing, only the greedy engine's progress is persisted —
/// the skyline pool is recomputed on every resume (it is a pure
/// function of the graph), and a leg that trips during the skyline
/// phase makes no durable progress (a partial pool cannot anchor the
/// saved cursor/queue); the checkpoint driver's period backoff
/// guarantees the phase eventually completes in one leg.
pub fn nei_sky_group_with<M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    lazy: bool,
    ctx: &mut ExecutionContext<'_>,
) -> ResumableRun<NeiSkyOutcome> {
    let rec = ctx.effective_recorder();
    let run = exec::drive(
        ctx,
        g.fingerprint(),
        || NeiSkyGroupState(GreedyState::fresh()),
        |mut state, budget| {
            if !valid_greedy_state(g, &state.0) {
                state = NeiSkyGroupState(GreedyState::fresh());
            }
            rec.phase_start("skyline");
            let sky = filter_refine_sky_budgeted(g, &RefineConfig::default(), budget);
            rec.phase_end("skyline");
            let skyline_size = sky.skyline.len();
            let opts = GreedyOptions {
                lazy,
                pruned_bfs: lazy,
                candidates: Some(sky.skyline),
            };
            // On a skyline-phase trip the sticky status makes greedy_leg
            // return immediately with the state untouched.
            rec.phase_start("greedy");
            let (greedy, inner) = greedy_leg(g, measure, k, &opts, budget, state.0);
            rec.phase_end("greedy");
            let completion = greedy.completion;
            (
                NeiSkyOutcome {
                    greedy,
                    skyline_size,
                },
                NeiSkyGroupState(inner),
                completion,
            )
        },
    );
    record_greedy_counters(rec, &run.outcome.greedy);
    rec.add(
        nsky_skyline::obs::Counter::CandidatesEmitted,
        run.outcome.skyline_size as u64,
    );
    run
}

/// Deprecated twin: use [`nei_sky_group_with`] with a recorder-armed
/// context.
pub fn nei_sky_group_recorded<M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    lazy: bool,
    rec: &dyn nsky_skyline::obs::Recorder,
) -> NeiSkyOutcome {
    nei_sky_group_with(
        g,
        measure,
        k,
        lazy,
        &mut ExecutionContext::new().recorder(rec),
    )
    .outcome
}

/// Deprecated twin: use [`nei_sky_group_with`] with a budget-armed
/// context.
pub fn nei_sky_group_budgeted<M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    lazy: bool,
    budget: &ExecutionBudget,
) -> NeiSkyOutcome {
    nei_sky_group_with(
        g,
        measure,
        k,
        lazy,
        &mut ExecutionContext::new().budget(budget),
    )
    .outcome
}

/// Resume state of an interrupted skyline-restricted greedy run: the
/// embedded [`GreedyState`] under its own kernel id. The distinct id
/// matters because the seeding cursor indexes the candidate *pool* —
/// the skyline here, all vertices for the unrestricted engine — so a
/// snapshot from one engine resumed in the other is rejected as a
/// kernel mismatch instead of silently misaligning the cursor.
struct NeiSkyGroupState(GreedyState);

impl KernelState for NeiSkyGroupState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::NeiSkyGroup;

    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        // Gate on *this* type's version — `Snapshot::pack` wrote it, not
        // the embedded engine's — then decode the shared fields.
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(NeiSkyGroupState(GreedyState::decode_fields(r)?))
    }
}

/// Deprecated twin: use [`nei_sky_group_with`] with a context arming
/// budget, resume and checkpoint sink together (see
/// `nsky_skyline::snapshot` for the contract).
pub fn nei_sky_group_resumable<'a, M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    lazy: bool,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<NeiSkyOutcome> {
    nei_sky_group_with(
        g,
        measure,
        k,
        lazy,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}

/// `NeiSkyGC` (paper Algorithm 4): group closeness maximization over the
/// skyline, with the optimized (CELF + pruned BFS) engine.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::star;
/// use nsky_centrality::neisky::nei_sky_gc;
///
/// let out = nei_sky_gc(&star(9), 1);
/// assert_eq!(out.greedy.group, vec![0]);
/// assert_eq!(out.skyline_size, 1); // only the hub is skyline
/// ```
pub fn nei_sky_gc(g: &Graph, k: usize) -> NeiSkyOutcome {
    nei_sky_group(g, Closeness, k, true)
}

/// `NeiSkyGH`: group harmonic maximization over the skyline.
pub fn nei_sky_gh(g: &Graph, k: usize) -> NeiSkyOutcome {
    nei_sky_group(g, Harmonic, k, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_group;
    use crate::group::group_score;
    use crate::measure::Decay;
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};
    use nsky_graph::VertexId;
    use nsky_skyline::domination::dominates;
    use nsky_skyline::filter_refine_sky;

    /// Lemma 3/4 spot check for *adjacent* dominator pairs: swapping a
    /// dominated vertex for an adjacent dominator never lowers the group
    /// score. (For adjacent pairs the excluded-term swap is exact:
    /// `d(v, S∪{u}) = d(u, S∪{v}) = 1`; for non-adjacent pairs the
    /// paper's lemma as literally stated admits counterexamples — see
    /// DESIGN.md — and the skyline restriction is validated empirically
    /// by `neisky_matches_unrestricted_greedy_score` below.)
    fn lemma_holds<M: GroupMeasure>(g: &Graph, measure: M) -> u32 {
        let mut checked = 0;
        for (a, b) in g.edges() {
            for (v, u) in [(a, b), (b, a)] {
                if !dominates(g, u, v) {
                    continue;
                }
                checked += 1;
                // S = some fixed small set avoiding u, v.
                let s: Vec<VertexId> = g.vertices().filter(|&x| x != u && x != v).take(2).collect();
                let mut with_u = s.clone();
                with_u.push(u);
                let mut with_v = s.clone();
                with_v.push(v);
                let su = group_score(g, measure, &with_u);
                let sv = group_score(g, measure, &with_v);
                assert!(
                    su >= sv - 1e-9,
                    "Lemma violated for {} with v={v} ≤ u={u}: {su} < {sv}",
                    M::NAME
                );
            }
        }
        checked
    }

    #[test]
    fn lemma3_closeness_on_random_graphs() {
        let mut checked = 0;
        for seed in 0..3 {
            checked += lemma_holds(&erdos_renyi(40, 0.12, seed), Closeness);
            checked += lemma_holds(&chung_lu_power_law(60, 2.6, 4.0, seed), Closeness);
        }
        assert!(checked > 0, "test vacuous: no adjacent dominations found");
    }

    #[test]
    fn lemma4_harmonic_on_random_graphs() {
        let mut checked = 0;
        for seed in 0..3 {
            checked += lemma_holds(&erdos_renyi(40, 0.12, seed + 10), Harmonic);
            checked += lemma_holds(&chung_lu_power_law(60, 2.6, 4.0, seed + 10), Harmonic);
        }
        assert!(checked > 0, "test vacuous: no adjacent dominations found");
    }

    #[test]
    fn lemma_extends_to_decay() {
        // The Sec. IV-D generality claim: any shortest-path measure.
        let mut checked = 0;
        for seed in 0..4 {
            checked += lemma_holds(
                &chung_lu_power_law(60, 2.6, 4.0, seed + 20),
                Decay::new(0.6),
            );
        }
        assert!(checked > 0, "test vacuous");
    }

    #[test]
    fn neisky_matches_unrestricted_greedy_score() {
        // Lemma 3/4 ⇒ the restricted greedy achieves the same score
        // sequence as the unrestricted one (ties may pick different but
        // equally good vertices).
        for seed in 0..4 {
            let g = chung_lu_power_law(200, 2.7, 5.0, seed);
            let k = 5;
            let full = greedy_group(&g, Harmonic, k, &GreedyOptions::default());
            let pruned = nei_sky_group(&g, Harmonic, k, false);
            assert!(
                pruned.greedy.score >= full.score - 1e-9,
                "seed {seed}: pruned {} < full {}",
                pruned.greedy.score,
                full.score
            );
            let full = greedy_group(&g, Closeness, k, &GreedyOptions::default());
            let pruned = nei_sky_group(&g, Closeness, k, false);
            assert!(pruned.greedy.score >= full.score - 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn neisky_reduces_evaluations() {
        let g = chung_lu_power_law(400, 2.7, 6.0, 9);
        let k = 4;
        let full = greedy_group(&g, Closeness, k, &GreedyOptions::default());
        let pruned = nei_sky_group(&g, Closeness, k, false);
        assert!(pruned.skyline_size < g.num_vertices());
        assert!(pruned.greedy.gain_evaluations < full.gain_evaluations);
        // The formula from Sec. IV-A.2: k(2r − k + 1)/2 evaluations.
        let r = pruned.skyline_size as u64;
        let kk = k as u64;
        assert_eq!(pruned.greedy.gain_evaluations, kk * (2 * r - kk + 1) / 2);
    }

    #[test]
    fn group_members_are_skyline_vertices() {
        let g = chung_lu_power_law(300, 2.8, 5.0, 4);
        let out = nei_sky_gh(&g, 6);
        let skyline = filter_refine_sky(&g, &RefineConfig::default()).skyline;
        for u in &out.greedy.group {
            assert!(skyline.binary_search(u).is_ok());
        }
    }
}
