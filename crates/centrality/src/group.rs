//! Evaluating group centrality scores for explicit groups.

use crate::measure::GroupMeasure;
use nsky_graph::traversal::Bfs;
use nsky_graph::{Graph, VertexId};

/// `d(v, S)` for every vertex, via one multi-source BFS.
/// Members of `S` get distance 0.
pub fn group_distances(g: &Graph, group: &[VertexId]) -> Vec<u32> {
    let mut bfs = Bfs::new(g.num_vertices());
    bfs.run_multi(g, group.iter().copied());
    bfs.distances().to_vec()
}

/// The raw total `Σ_{v∉S} f(d(v, S))` for measure `M`.
pub fn group_total<M: GroupMeasure>(g: &Graph, measure: M, group: &[VertexId]) -> f64 {
    let n = g.num_vertices();
    let dist = group_distances(g, group);
    let mut in_group = vec![false; n];
    for &s in group {
        in_group[s as usize] = true;
    }
    g.vertices()
        .filter(|&v| !in_group[v as usize])
        .map(|v| measure.contribution(dist[v as usize], n))
        .sum()
}

/// The group score `GC(S)` / `GH(S)` / … for measure `M`
/// (paper Definitions 7 and 9).
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::star;
/// use nsky_centrality::{group::group_score, measure::{Closeness, Harmonic}};
///
/// let g = star(6);
/// // The hub alone covers all leaves at distance 1.
/// assert_eq!(group_score(&g, Closeness, &[0]), 6.0 / 5.0);
/// assert_eq!(group_score(&g, Harmonic, &[0]), 5.0);
/// ```
pub fn group_score<M: GroupMeasure>(g: &Graph, measure: M, group: &[VertexId]) -> f64 {
    measure.score(group_total(g, measure, group), g.num_vertices())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{Closeness, Decay, Harmonic};
    use nsky_graph::generators::special::{cycle, path, star};

    #[test]
    fn distances_from_group() {
        let g = path(6);
        assert_eq!(group_distances(&g, &[0, 5]), vec![0, 1, 2, 2, 1, 0]);
    }

    #[test]
    fn larger_groups_never_hurt_closeness() {
        let g = cycle(10);
        let single = group_score(&g, Closeness, &[0]);
        let pair = group_score(&g, Closeness, &[0, 5]);
        assert!(pair > single);
    }

    #[test]
    fn harmonic_group_score_on_star() {
        let g = star(5);
        // Group of two leaves: hub at 1, two other leaves at 2.
        let s = group_score(&g, Harmonic, &[1, 2]);
        assert!((s - (1.0 + 0.5 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn decay_group_score() {
        let g = path(4);
        let s = group_score(&g, Decay::new(0.5), &[0]);
        // distances 1, 2, 3 ⇒ 0.5 + 0.25 + 0.125.
        assert!((s - 0.875).abs() < 1e-12);
    }

    #[test]
    fn disconnected_component_penalized() {
        let g = Graph::from_edges(4, [(0, 1)]);
        // S = {0}: v1 at 1; v2, v3 unreachable ⇒ penalty 4 each.
        assert!((group_total(&g, Closeness, &[0]) - 9.0).abs() < 1e-12);
        assert!((group_total(&g, Harmonic, &[0]) - 1.0).abs() < 1e-12);
    }
}
