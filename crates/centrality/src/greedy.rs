//! The greedy group-centrality maximization engine.
//!
//! One engine covers the paper's four algorithm variants:
//!
//! | paper name | configuration |
//! |---|---|
//! | `BaseGC` / `BaseGH` | plain re-evaluation, all vertices |
//! | `Greedy++` / `Greedy-H` | [`GreedyOptions::lazy`] CELF queue + pruned marginal-gain BFS |
//! | `NeiSkyGC` / `NeiSkyGH` | either engine with [`GreedyOptions::candidates`] = skyline |
//!
//! The engine maximizes the *raw-total gain* each round (distance-sum
//! reduction for closeness, contribution increase for harmonic/decay),
//! which is a monotone transform of the score gain, so the selected
//! vertex matches the paper's `argmax GC(S ∪ {u}) − GC(S)` rule. Raw
//! gains are non-increasing as `S` grows (adding members only lowers
//! `d(v, S)` pointwise), which justifies the CELF lazy queue.

use crate::measure::GroupMeasure;
use nsky_graph::{Graph, VertexId};
use nsky_skyline::budget::{BudgetTicker, Completion, ExecutionBudget};
use nsky_skyline::exec::{self, ExecutionContext};
use nsky_skyline::snapshot::{
    Checkpointer, KernelId, KernelState, Reader, RecoveryError, ResumableRun, Snapshot, Writer,
};
use std::collections::{BinaryHeap, VecDeque};

/// Options of [`greedy_group`].
#[derive(Clone, Debug, Default)]
pub struct GreedyOptions {
    /// Use the CELF lazy-evaluation queue instead of re-evaluating every
    /// candidate each round.
    pub lazy: bool,
    /// Prune marginal-gain BFS branches that can no longer improve any
    /// distance (`d_u(v) ≥ d(v, S)` implies no descendant improves).
    pub pruned_bfs: bool,
    /// Restrict the candidate pool (e.g. to the neighborhood skyline).
    /// `None` means all vertices.
    pub candidates: Option<Vec<VertexId>>,
}

impl GreedyOptions {
    /// The paper's optimized baseline (`Greedy++` / `Greedy-H`): CELF +
    /// pruned BFS over all vertices.
    pub fn optimized() -> Self {
        GreedyOptions {
            lazy: true,
            pruned_bfs: true,
            candidates: None,
        }
    }
}

/// Result of a greedy maximization run.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// Selected group, in selection order.
    pub group: Vec<VertexId>,
    /// Final score of the measure (e.g. `GC(S)`).
    pub score: f64,
    /// Number of marginal-gain evaluations performed — the quantity the
    /// paper's `k(2n−k+1)/2` vs `k(2r−k+1)/2` comparison is about.
    pub gain_evaluations: u64,
    /// CELF lazy-queue pops resolved *without* a fresh gain evaluation:
    /// stale entries of already-committed vertices, and entries whose
    /// cached gain was still current and committed directly. Always zero
    /// for the plain engine.
    pub lazy_skips: u64,
    /// Score after each selection (length = |group|).
    pub score_trace: Vec<f64>,
    /// How the run ended. On a trip the group holds the seeds committed
    /// before the budget ran out — a valid greedy prefix of fewer than
    /// `k` members (selections already made are never rolled back).
    pub completion: Completion,
}

struct HeapEntry {
    gain: f64,
    vertex: VertexId,
    round: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.vertex == other.vertex
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on gain; ties broken toward the smaller vertex id for
        // determinism.
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Scratch state shared by marginal evaluations.
struct Evaluator<'g, M> {
    g: &'g Graph,
    measure: M,
    n: usize,
    /// `d(v, S)`; `u32::MAX` while `S = ∅` (or unreachable).
    dist_s: Vec<u32>,
    in_group: Vec<bool>,
    /// Raw total `Σ_{v∉S} f(d(v, S))`.
    total: f64,
    // BFS scratch (stamped, reused across evaluations).
    dist_u: Vec<u32>,
    stamp: Vec<u32>,
    round: u32,
    queue: VecDeque<VertexId>,
    improvements: Vec<(VertexId, u32)>,
}

impl<'g, M: GroupMeasure> Evaluator<'g, M> {
    fn new(g: &'g Graph, measure: M) -> Self {
        let n = g.num_vertices();
        let total = n as f64 * measure.contribution(u32::MAX, n);
        Evaluator {
            g,
            measure,
            n,
            dist_s: vec![u32::MAX; n],
            in_group: vec![false; n],
            total,
            dist_u: vec![u32::MAX; n],
            stamp: vec![u32::MAX; n],
            round: 0,
            queue: VecDeque::new(),
            improvements: Vec::new(),
        }
    }

    /// BFS from `src` collecting `(v, d_u(v))` for every vertex whose
    /// distance improves on `d(v, S)`. Returns the trip status if the
    /// budget runs out mid-traversal (the improvement list is then
    /// incomplete and must be discarded).
    fn collect_improvements(
        &mut self,
        src: VertexId,
        prune: bool,
        ticker: &mut BudgetTicker<'_>,
    ) -> Option<Completion> {
        self.round += 1;
        let round = self.round;
        self.queue.clear();
        self.improvements.clear();
        self.dist_u[src as usize] = 0;
        self.stamp[src as usize] = round;
        self.queue.push_back(src);
        if self.dist_s[src as usize] > 0 {
            self.improvements.push((src, 0));
        }
        while let Some(v) = self.queue.pop_front() {
            if let Some(status) = ticker.check() {
                return Some(status);
            }
            let dv = self.dist_u[v as usize];
            if prune && dv >= self.dist_s[v as usize] {
                // No descendant can improve: d_u(w) ≥ d_u(v) + d(v,w)
                // ≥ d(v,S) + d(v,w) ≥ d(w,S).
                continue;
            }
            for &w in self.g.neighbors(v) {
                if let Some(status) = ticker.check() {
                    return Some(status);
                }
                if self.stamp[w as usize] == round {
                    continue;
                }
                self.stamp[w as usize] = round;
                self.dist_u[w as usize] = dv + 1;
                if dv + 1 < self.dist_s[w as usize] {
                    self.improvements.push((w, dv + 1));
                }
                self.queue.push_back(w);
            }
        }
        None
    }

    /// Raw-total gain of adding `u` (non-negative, in the maximize
    /// orientation of the measure), or `None` when the budget tripped
    /// mid-evaluation (the partial improvement list is discarded).
    // nsky-lint: allow(budget-check) — bounded by one BFS's improvement list; the BFS itself is ticked
    fn gain(&mut self, u: VertexId, prune: bool, ticker: &mut BudgetTicker<'_>) -> Option<f64> {
        debug_assert!(!self.in_group[u as usize]);
        if self.collect_improvements(u, prune, ticker).is_some() {
            return None;
        }
        let mut delta = 0.0; // new_total − total, excluding u's own term
        for &(v, du) in &self.improvements {
            if v == u || self.in_group[v as usize] {
                continue;
            }
            delta += self.measure.contribution(du, self.n)
                - self.measure.contribution(self.dist_s[v as usize], self.n);
        }
        // u leaves the sum.
        let own = self.measure.contribution(self.dist_s[u as usize], self.n);
        let new_total = self.total + delta - own;
        Some(if self.measure.maximize_total() {
            new_total - self.total
        } else {
            self.total - new_total
        })
    }

    /// Adds `u` to the group, updating `dist_s` and `total`.
    ///
    /// Runs to completion even under an exhausted budget: the incremental
    /// `dist_s`/`total` state must stay consistent, so a commit is atomic
    /// (its cost is one BFS — the same as the gain evaluation that chose
    /// `u`).
    // nsky-lint: allow(budget-check) — atomic by design: an interrupted commit would corrupt dist_s/total
    fn commit(&mut self, u: VertexId) {
        self.collect_improvements(u, true, &mut BudgetTicker::inert());
        self.total -= self.measure.contribution(self.dist_s[u as usize], self.n);
        self.in_group[u as usize] = true;
        // Drain improvements to release the borrow while mutating state.
        let improvements = std::mem::take(&mut self.improvements);
        for &(v, du) in &improvements {
            if v != u && !self.in_group[v as usize] {
                self.total += self.measure.contribution(du, self.n)
                    - self.measure.contribution(self.dist_s[v as usize], self.n);
            }
            self.dist_s[v as usize] = du;
        }
        self.improvements = improvements;
        self.dist_s[u as usize] = 0;
    }

    fn score(&self) -> f64 {
        self.measure.score(self.total, self.n)
    }
}

/// Greedily selects a group of (at most) `k` vertices maximizing the
/// group measure `M`.
///
/// Returns fewer than `k` vertices only when the candidate pool is
/// smaller than `k`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::star;
/// use nsky_centrality::{greedy::{greedy_group, GreedyOptions}, measure::Harmonic};
///
/// let g = star(8);
/// let out = greedy_group(&g, Harmonic, 1, &GreedyOptions::default());
/// assert_eq!(out.group, vec![0]); // the hub maximizes GH for k = 1
/// ```
pub fn greedy_group<M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    opts: &GreedyOptions,
) -> GreedyOutcome {
    greedy_group_with(g, measure, k, opts, &mut ExecutionContext::new()).outcome
}

/// The one entry point: [`greedy_group`] under an [`ExecutionContext`]
/// — budget, cancellation, checkpoint/resume and observability in any
/// combination. The recorder sees one `"greedy"` span around the
/// selection rounds plus a bulk flush of the run's evaluation counters
/// (`gain_evaluations`, `lazy_skips`) at exit; the round loops never
/// touch it. When resuming, use the same measure, `k`, and options the
/// snapshot was taken under — the state embeds none of them, so a
/// mismatched resume silently maximizes the wrong objective (the graph
/// fingerprint only pins the graph).
pub fn greedy_group_with<M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    opts: &GreedyOptions,
    ctx: &mut ExecutionContext<'_>,
) -> ResumableRun<GreedyOutcome> {
    let rec = ctx.effective_recorder();
    rec.phase_start("greedy");
    let run = exec::drive(
        ctx,
        g.fingerprint(),
        GreedyState::fresh,
        |mut state, budget| {
            if !valid_greedy_state(g, &state) {
                state = GreedyState::fresh();
            }
            let (outcome, state) = greedy_leg(g, measure, k, opts, budget, state);
            let completion = outcome.completion;
            (outcome, state, completion)
        },
    );
    rec.phase_end("greedy");
    record_greedy_counters(rec, &run.outcome);
    run
}

/// Deprecated twin: use [`greedy_group_with`] with a recorder-armed
/// context.
pub fn greedy_group_recorded<M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    opts: &GreedyOptions,
    rec: &dyn nsky_skyline::obs::Recorder,
) -> GreedyOutcome {
    greedy_group_with(
        g,
        measure,
        k,
        opts,
        &mut ExecutionContext::new().recorder(rec),
    )
    .outcome
}

/// Flushes a finished run's evaluation counters into a recorder — one
/// bulk call per field, at the entry-point boundary.
pub(crate) fn record_greedy_counters(rec: &dyn nsky_skyline::obs::Recorder, out: &GreedyOutcome) {
    rec.add(
        nsky_skyline::obs::Counter::GainEvaluations,
        out.gain_evaluations,
    );
    rec.add(nsky_skyline::obs::Counter::LazySkips, out.lazy_skips);
}

/// Deprecated twin: use [`greedy_group_with`] with a budget-armed
/// context. With an unlimited budget the output is identical to
/// [`greedy_group`]; after a trip the outcome holds the greedy prefix
/// committed so far (each member was a genuine per-round argmax) with
/// the trip status in [`GreedyOutcome::completion`]. Commits are atomic
/// — the budget is polled between and within gain *evaluations*, never
/// inside the state update of an already-chosen seed.
pub fn greedy_group_budgeted<M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    opts: &GreedyOptions,
    budget: &ExecutionBudget,
) -> GreedyOutcome {
    greedy_group_with(
        g,
        measure,
        k,
        opts,
        &mut ExecutionContext::new().budget(budget),
    )
    .outcome
}

/// CELF is still seeding its queue with first-round gains.
const PHASE_SEEDING: u8 = 0;
/// Selection rounds are running (always the phase for the plain engine).
const PHASE_ROUNDS: u8 = 1;

/// Resume state of an interrupted greedy maximization.
///
/// The committed group is the durable core: commits are deterministic,
/// so replaying them rebuilds the incremental `dist_s`/`total` state
/// bit-identically (gain *evaluations* never mutate that state). For
/// the CELF engine the lazy queue rides along — entry gains are `f64`s
/// preserved bit-exactly — plus the seeding cursor and the round
/// counter; entries are sorted for a canonical encoding ([`HeapEntry`]'s
/// order is total on live queues, which hold one entry per vertex). A
/// trip during a gain re-evaluation re-pushes the popped entry with its
/// stale gain, so the resumed pop re-evaluates the same vertex against
/// the identical evaluator state.
pub(crate) struct GreedyState {
    phase: u8,
    group: Vec<VertexId>,
    seed_cursor: usize,
    round: u32,
    entries: Vec<(f64, VertexId, u32)>,
}

impl GreedyState {
    pub(crate) fn fresh() -> Self {
        GreedyState {
            phase: PHASE_SEEDING,
            group: Vec::new(),
            seed_cursor: 0,
            round: 0,
            entries: Vec::new(),
        }
    }

    /// Captures the live engine structures at a trip point.
    fn packed(
        phase: u8,
        group: &[VertexId],
        seed_cursor: usize,
        round: u32,
        heap: BinaryHeap<HeapEntry>,
    ) -> Self {
        let mut entries = heap.into_vec();
        entries.sort_unstable();
        GreedyState {
            phase,
            group: group.to_vec(),
            seed_cursor,
            round,
            entries: entries
                .into_iter()
                .map(|e| (e.gain, e.vertex, e.round))
                .collect(),
        }
    }

    /// Decodes the fields that follow the version gate. Shared with the
    /// `NeiSkyGroup` wrapper state, which checks its *own* format
    /// version first — `Snapshot::pack` writes the outermost type's
    /// version, so the wrapper must not re-check this type's.
    // nsky-lint: allow(budget-check) — bounded decode of a length-checked snapshot payload
    pub(crate) fn decode_fields(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        let phase = r.take_u8()?;
        let group = r.take_u32_vec()?;
        let seed_cursor = r.take_usize()?;
        let round = r.take_u32()?;
        let entry_count = r.take_usize()?;
        let mut entries = Vec::new();
        for _ in 0..entry_count {
            let gain = r.take_f64()?;
            let vertex = r.take_u32()?;
            entries.push((gain, vertex, r.take_u32()?));
        }
        Ok(GreedyState {
            phase,
            group,
            seed_cursor,
            round,
            entries,
        })
    }
}

impl KernelState for GreedyState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::GreedyGroup;

    // nsky-lint: allow(budget-check) — bounded single pass over the saved queue
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.phase);
        w.put_u32_slice(&self.group);
        w.put_usize(self.seed_cursor);
        w.put_u32(self.round);
        w.put_usize(self.entries.len());
        for &(gain, vertex, round) in &self.entries {
            w.put_f64(gain);
            w.put_u32(vertex);
            w.put_u32(round);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Self::decode_fields(r)
    }
}

/// Structural validation of a resumed greedy state: known phase, group
/// members distinct and in range (they are blindly re-committed), queue
/// vertices in range, and no committed members while still seeding
/// (seed gains are evaluated against the empty group). NaN gains are
/// tolerated — the queue orders by `total_cmp`, which is total.
pub(crate) fn valid_greedy_state(g: &Graph, st: &GreedyState) -> bool {
    let n = g.num_vertices();
    let mut seen = std::collections::BTreeSet::new();
    st.phase <= PHASE_ROUNDS
        && (st.phase == PHASE_ROUNDS || st.group.is_empty())
        && st.seed_cursor <= n
        && st.group.iter().all(|&u| (u as usize) < n && seen.insert(u))
        && st.entries.iter().all(|&(_, v, _)| (v as usize) < n)
}

/// Deprecated twin: use [`greedy_group_with`] with a context arming
/// budget, resume and checkpoint sink together (see
/// `nsky_skyline::snapshot` for the contract). Resume with the same
/// measure, `k`, and options the snapshot was taken under — the state
/// embeds none of them, so a mismatched resume silently maximizes the
/// wrong objective (the graph fingerprint only pins the graph).
pub fn greedy_group_resumable<'a, M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    opts: &GreedyOptions,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<GreedyOutcome> {
    greedy_group_with(
        g,
        measure,
        k,
        opts,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}

pub(crate) fn greedy_leg<M: GroupMeasure>(
    g: &Graph,
    measure: M,
    k: usize,
    opts: &GreedyOptions,
    budget: &ExecutionBudget,
    state: GreedyState,
) -> (GreedyOutcome, GreedyState) {
    let pool: Vec<VertexId> = match &opts.candidates {
        Some(c) => c.clone(),
        None => g.vertices().collect(),
    };
    let k = k.min(pool.len());
    let mut ev = Evaluator::new(g, measure);
    let mut outcome = GreedyOutcome {
        group: Vec::with_capacity(k),
        score: ev.score(),
        gain_evaluations: 0,
        lazy_skips: 0,
        score_trace: Vec::with_capacity(k),
        // Inherit an earlier sticky trip on the shared budget (e.g. a
        // skyline phase that already timed out upstream).
        completion: budget.status(),
    };
    if k == 0 {
        return (outcome, state);
    }
    // Evaluator scratch: dist_s/dist_u/stamp (u32) + in_group + queue.
    if let Some(status) = budget.charge(g.num_vertices() * 17) {
        outcome.completion = status;
        return (outcome, state);
    }
    let mut state = state;
    if state.phase == PHASE_SEEDING && state.seed_cursor > pool.len() {
        // A seeding cursor beyond the pool cannot come from a genuine
        // snapshot of this configuration; degrade to a fresh run.
        state = GreedyState::fresh();
    }
    let mut ticker = budget.ticker();

    // Replay the committed prefix: commits are deterministic, so the
    // incremental dist_s/total state is rebuilt bit-identically.
    for &u in &state.group {
        ev.commit(u);
        outcome.group.push(u);
        outcome.score_trace.push(ev.score());
    }

    if opts.lazy {
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(pool.len());
        // nsky-lint: allow(poll-reachability) — bounded: rebuilds the saved lazy queue, at most one entry per pool vertex
        for &(gain, vertex, entry_round) in &state.entries {
            heap.push(HeapEntry {
                gain,
                vertex,
                round: entry_round,
            });
        }
        let mut round = state.round;
        if state.phase == PHASE_SEEDING {
            for (idx, &u) in pool.iter().enumerate().skip(state.seed_cursor) {
                outcome.gain_evaluations += 1;
                let Some(gain) = ev.gain(u, opts.pruned_bfs, &mut ticker) else {
                    outcome.completion = ticker.status();
                    outcome.score = ev.score();
                    let state =
                        GreedyState::packed(PHASE_SEEDING, &outcome.group, idx, round, heap);
                    return (outcome, state);
                };
                heap.push(HeapEntry {
                    gain,
                    vertex: u,
                    round: 0,
                });
            }
        }
        'rounds: while outcome.group.len() < k {
            let Some(top) = heap.pop() else {
                break; // pool smaller than k: return the partial group
            };
            if ev.in_group[top.vertex as usize] {
                outcome.lazy_skips += 1;
                continue;
            }
            if top.round == round {
                outcome.lazy_skips += 1;
                ev.commit(top.vertex);
                outcome.group.push(top.vertex);
                outcome.score_trace.push(ev.score());
                round += 1;
            } else {
                outcome.gain_evaluations += 1;
                let Some(gain) = ev.gain(top.vertex, opts.pruned_bfs, &mut ticker) else {
                    // Re-push the popped entry (stale gain intact) so the
                    // resumed run re-pops and re-evaluates it against the
                    // identical evaluator state.
                    outcome.completion = ticker.status();
                    heap.push(top);
                    break 'rounds;
                };
                heap.push(HeapEntry {
                    gain,
                    vertex: top.vertex,
                    round,
                });
            }
        }
        outcome.score = ev.score();
        let state = GreedyState::packed(PHASE_ROUNDS, &outcome.group, pool.len(), round, heap);
        (outcome, state)
    } else {
        'plain: while outcome.group.len() < k {
            let mut best: Option<(f64, VertexId)> = None;
            for &u in &pool {
                if ev.in_group[u as usize] {
                    continue;
                }
                outcome.gain_evaluations += 1;
                let Some(gain) = ev.gain(u, opts.pruned_bfs, &mut ticker) else {
                    // Trip mid-round: the round's argmax is unknown, so
                    // the in-progress round is dropped entirely.
                    outcome.completion = ticker.status();
                    break 'plain;
                };
                let better = match best {
                    None => true,
                    Some((bg, bv)) => gain > bg || (gain == bg && u < bv),
                };
                if better {
                    best = Some((gain, u));
                }
            }
            let Some((_, v)) = best else {
                break; // pool smaller than k: return the partial group
            };
            ev.commit(v);
            outcome.group.push(v);
            outcome.score_trace.push(ev.score());
        }
        outcome.score = ev.score();
        let state = GreedyState {
            phase: PHASE_ROUNDS,
            group: outcome.group.clone(),
            seed_cursor: pool.len(),
            round: 0,
            entries: Vec::new(),
        };
        (outcome, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_score;
    use crate::measure::{Closeness, Decay, Harmonic};
    use nsky_graph::generators::special::{cycle, path, star};
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};

    #[test]
    fn star_hub_first() {
        let g = star(10);
        for lazy in [false, true] {
            let opts = GreedyOptions {
                lazy,
                pruned_bfs: true,
                candidates: None,
            };
            let gc = greedy_group(&g, Closeness, 3, &opts);
            assert_eq!(gc.group[0], 0, "lazy={lazy}");
            let gh = greedy_group(&g, Harmonic, 3, &opts);
            assert_eq!(gh.group[0], 0, "lazy={lazy}");
        }
    }

    #[test]
    fn score_matches_independent_evaluation() {
        let g = erdos_renyi(120, 0.05, 3);
        for lazy in [false, true] {
            let opts = GreedyOptions {
                lazy,
                pruned_bfs: lazy,
                candidates: None,
            };
            let out = greedy_group(&g, Harmonic, 5, &opts);
            let independent = group_score(&g, Harmonic, &out.group);
            assert!(
                (out.score - independent).abs() < 1e-9,
                "incremental total drifted: {} vs {independent}",
                out.score
            );
            let out = greedy_group(&g, Closeness, 5, &opts);
            let independent = group_score(&g, Closeness, &out.group);
            assert!((out.score - independent).abs() < 1e-9);
        }
    }

    #[test]
    fn lazy_and_plain_agree() {
        // CELF returns a group with the same greedy score sequence.
        for seed in 0..4 {
            let g = erdos_renyi(80, 0.06, seed);
            let plain = greedy_group(&g, Harmonic, 6, &GreedyOptions::default());
            let lazy = greedy_group(&g, Harmonic, 6, &GreedyOptions::optimized());
            assert_eq!(plain.group, lazy.group, "seed {seed}");
            assert!(lazy.gain_evaluations <= plain.gain_evaluations);
        }
    }

    #[test]
    fn pruned_bfs_changes_nothing() {
        let g = chung_lu_power_law(300, 2.8, 5.0, 7);
        let a = greedy_group(
            &g,
            Closeness,
            5,
            &GreedyOptions {
                lazy: false,
                pruned_bfs: false,
                candidates: None,
            },
        );
        let b = greedy_group(
            &g,
            Closeness,
            5,
            &GreedyOptions {
                lazy: false,
                pruned_bfs: true,
                candidates: None,
            },
        );
        assert_eq!(a.group, b.group);
        assert!((a.score - b.score).abs() < 1e-9);
    }

    #[test]
    fn candidate_restriction_respected() {
        let g = cycle(12);
        let opts = GreedyOptions {
            lazy: false,
            pruned_bfs: false,
            candidates: Some(vec![0, 3, 6, 9]),
        };
        let out = greedy_group(&g, Harmonic, 3, &opts);
        assert!(out.group.iter().all(|u| [0, 3, 6, 9].contains(u)));
        assert_eq!(out.group.len(), 3);
    }

    #[test]
    fn evaluation_counts_match_formula_for_plain_greedy() {
        // BaseGC performs k(2n − k + 1)/2 gain evaluations.
        let g = path(20);
        let (n, k) = (20u64, 4u64);
        let out = greedy_group(&g, Closeness, k as usize, &GreedyOptions::default());
        assert_eq!(out.gain_evaluations, k * (2 * n - k + 1) / 2);
    }

    #[test]
    fn greedy_monotone_score_trace() {
        let g = erdos_renyi(100, 0.05, 11);
        for lazy in [false, true] {
            let out = greedy_group(
                &g,
                Harmonic,
                8,
                &GreedyOptions {
                    lazy,
                    pruned_bfs: true,
                    candidates: None,
                },
            );
            for w in out.score_trace.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "harmonic trace must not decrease");
            }
        }
    }

    #[test]
    fn k_edge_cases() {
        let g = path(5);
        assert!(greedy_group(&g, Harmonic, 0, &GreedyOptions::default())
            .group
            .is_empty());
        let all = greedy_group(&g, Harmonic, 99, &GreedyOptions::default());
        assert_eq!(all.group.len(), 5);
        let empty = greedy_group(&Graph::empty(0), Harmonic, 3, &GreedyOptions::default());
        assert!(empty.group.is_empty());
    }

    #[test]
    fn decay_measure_works_in_greedy() {
        let g = star(8);
        let out = greedy_group(&g, Decay::new(0.5), 2, &GreedyOptions::default());
        assert_eq!(out.group[0], 0);
        assert_eq!(out.group.len(), 2);
    }

    #[test]
    fn disconnected_graph_selection_spans_components() {
        let g = Graph::from_edges(8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]);
        let out = greedy_group(&g, Closeness, 2, &GreedyOptions::default());
        let comp = |u: VertexId| u / 4;
        assert_ne!(
            comp(out.group[0]),
            comp(out.group[1]),
            "second pick should cover the other component: {:?}",
            out.group
        );
    }
}
