//! # nsky-centrality
//!
//! Shortest-path centralities and **group centrality maximization** with
//! neighborhood-skyline pruning (paper Sec. IV-A/B).
//!
//! * [`measure`] — the [`measure::GroupMeasure`] abstraction covering
//!   group closeness (Definition 7), group harmonic (Definition 9) and —
//!   as an extension demonstrating the Sec. IV-D generality claim — group
//!   decay centrality;
//! * [`vertex`] — per-vertex closeness/harmonic centrality (Definitions
//!   6 and 8);
//! * [`group`] — evaluating `GC(S)` / `GH(S)` for explicit groups;
//! * [`greedy`] — the greedy maximization engine: plain re-evaluation
//!   (`BaseGC`/`BaseGH`) or CELF lazy evaluation with pruned marginal-gain
//!   BFS (the `Greedy++`/`Greedy-H` stand-in), optionally restricted to a
//!   candidate set;
//! * [`neisky`] — `NeiSkyGC` / `NeiSkyGH`: the same engine restricted to
//!   the neighborhood skyline, justified by Lemma 3/4 (if `v ≤ u`, the
//!   marginal gain of `u` is at least that of `v`);
//! * [`betweenness`] — Brandes betweenness, exact group betweenness, and
//!   the skyline-pruned greedy the paper names as future work (Sec. IV-D).
//!
//! ## Disconnected graphs
//!
//! `d(v, S) = ∞` contributes `0` to harmonic scores (the standard
//! convention) and a penalty distance of `n` to closeness sums, keeping
//! `GC` finite and monotone on disconnected graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod betweenness;
pub mod greedy;
pub mod group;
pub mod measure;
pub mod neisky;
pub mod vertex;
