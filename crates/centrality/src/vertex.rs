//! Per-vertex closeness and harmonic centrality (paper Definitions 6, 8).

use nsky_graph::traversal::{Bfs, UNREACHABLE};
use nsky_graph::{Graph, VertexId};

/// Vertex closeness centrality `C(u) = n / Σ_{v≠u} d(v, u)`;
/// unreachable vertices contribute the penalty distance `n`.
pub fn closeness(g: &Graph, u: VertexId) -> f64 {
    let n = g.num_vertices();
    let mut bfs = Bfs::new(n);
    bfs.run(g, u);
    let total: f64 = g
        .vertices()
        .filter(|&v| v != u)
        .map(|v| match bfs.distance(v) {
            UNREACHABLE => n as f64,
            d => d as f64,
        })
        .sum();
    if total <= 0.0 {
        f64::INFINITY
    } else {
        n as f64 / total
    }
}

/// Vertex harmonic centrality `H(u) = Σ_{v≠u} 1 / d(v, u)`.
pub fn harmonic(g: &Graph, u: VertexId) -> f64 {
    let mut bfs = Bfs::new(g.num_vertices());
    bfs.run(g, u);
    g.vertices()
        .filter(|&v| v != u)
        .map(|v| match bfs.distance(v) {
            UNREACHABLE | 0 => 0.0,
            d => 1.0 / d as f64,
        })
        .sum()
}

/// Harmonic centrality of every vertex — one BFS per vertex, `O(n·m)`;
/// intended for the examples and small evaluation graphs.
pub fn all_harmonic(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bfs = Bfs::new(n);
    let mut out = vec![0.0; n];
    for u in g.vertices() {
        bfs.run(g, u);
        out[u as usize] = g
            .vertices()
            .filter(|&v| v != u)
            .map(|v| match bfs.distance(v) {
                UNREACHABLE | 0 => 0.0,
                d => 1.0 / d as f64,
            })
            .sum();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_graph::generators::special::{path, star};

    #[test]
    fn star_center_has_highest_centrality() {
        let g = star(6);
        let c0 = closeness(&g, 0);
        let h0 = harmonic(&g, 0);
        for leaf in 1..6 {
            assert!(c0 > closeness(&g, leaf));
            assert!(h0 > harmonic(&g, leaf));
        }
        // Exact values: center at distance 1 from 5 leaves.
        assert!((c0 - 6.0 / 5.0).abs() < 1e-12);
        assert!((h0 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn path_midpoint_beats_endpoint() {
        let g = path(7);
        assert!(closeness(&g, 3) > closeness(&g, 0));
        assert!(harmonic(&g, 3) > harmonic(&g, 0));
    }

    #[test]
    fn disconnected_penalties() {
        let g = Graph::from_edges(4, [(0, 1)]);
        // closeness(0): d(1)=1, d(2)=d(3)=penalty 4 ⇒ 4/9.
        assert!((closeness(&g, 0) - 4.0 / 9.0).abs() < 1e-12);
        // harmonic(0): only vertex 1 reachable ⇒ 1.
        assert!((harmonic(&g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_harmonic_matches_single() {
        let g = path(6);
        let all = all_harmonic(&g);
        for u in g.vertices() {
            assert!((all[u as usize] - harmonic(&g, u)).abs() < 1e-12);
        }
    }
}
