//! Betweenness centrality (Brandes' algorithm) and group betweenness
//! maximization with neighborhood-skyline pruning — the extension the
//! paper flags as future work in Sec. IV-D ("our pruning technique can
//! also be used to handle ... group betweenness maximization").
//!
//! Group betweenness of `S` is the total fraction of shortest paths
//! covered by `S`:
//! `GB(S) = Σ_{s<t, s,t∉S} (σ_st − σ_st^{¬S}) / σ_st`,
//! where `σ_st^{¬S}` counts shortest `s–t` paths (of the *original*
//! length) avoiding `S`. Evaluation runs one BFS path-count pass per
//! source in `G` and one in `G ∖ S` — `O(n·m)` per group — so the greedy
//! maximizer is meant for the small/medium graphs of the examples and
//! tests, mirroring how exact group betweenness is used in practice.

use nsky_graph::{Graph, VertexId};
use nsky_skyline::{filter_refine_sky, RefineConfig};
use std::collections::VecDeque;

/// Vertex betweenness centrality of every vertex (Brandes' algorithm,
/// undirected, unweighted; each unordered pair counted once).
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::path;
/// use nsky_centrality::betweenness::betweenness;
///
/// let b = betweenness(&path(5));
/// assert_eq!(b[0], 0.0);          // endpoints lie on no interior paths
/// assert!(b[2] > b[1]);           // the midpoint carries the most
/// ```
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0f64; n];
    let mut dist = vec![i64::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    for s in g.vertices() {
        dist.fill(i64::MAX);
        sigma.fill(0.0);
        delta.fill(0.0);
        order.clear();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in g.neighbors(v) {
                if dist[w as usize] == i64::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                }
            }
        }
        for &w in order.iter().rev() {
            for &v in g.neighbors(w) {
                if dist[v as usize] + 1 == dist[w as usize] {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    // Each unordered pair was accumulated from both endpoints.
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

/// Shortest-path counts from `s`: distances and σ values, optionally
/// forbidding relay through `blocked` vertices (the source itself is
/// never blocked; blocked vertices get σ = 0 and do not propagate).
fn path_counts(
    g: &Graph,
    s: VertexId,
    blocked: Option<&[bool]>,
    dist: &mut [i64],
    sigma: &mut [f64],
) {
    dist.fill(i64::MAX);
    sigma.fill(0.0);
    let mut queue = VecDeque::new();
    dist[s as usize] = 0;
    sigma[s as usize] = 1.0;
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        if let Some(b) = blocked {
            if v != s && b[v as usize] {
                continue; // reachable, but does not relay paths
            }
        }
        for &w in g.neighbors(v) {
            if dist[w as usize] == i64::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                queue.push_back(w);
            }
            if dist[w as usize] == dist[v as usize] + 1 {
                sigma[w as usize] += sigma[v as usize];
            }
        }
    }
}

/// Exact group betweenness `GB(S)`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::path;
/// use nsky_centrality::betweenness::group_betweenness;
///
/// // The midpoint of P5 covers all pairs crossing it: {0,1}×{3,4} plus
/// // none within the sides ⇒ 4 covered pairs.
/// assert_eq!(group_betweenness(&path(5), &[2]), 4.0);
/// ```
pub fn group_betweenness(g: &Graph, group: &[VertexId]) -> f64 {
    let n = g.num_vertices();
    let mut in_group = vec![false; n];
    for &s in group {
        in_group[s as usize] = true;
    }
    let mut dist = vec![i64::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut dist_b = vec![i64::MAX; n];
    let mut sigma_b = vec![0.0f64; n];
    let mut total = 0.0;
    for s in g.vertices() {
        if in_group[s as usize] {
            continue;
        }
        path_counts(g, s, None, &mut dist, &mut sigma);
        path_counts(g, s, Some(&in_group), &mut dist_b, &mut sigma_b);
        for t in g.vertices() {
            if t <= s || in_group[t as usize] || dist[t as usize] == i64::MAX {
                continue;
            }
            let covered = if dist_b[t as usize] != dist[t as usize] {
                1.0 // every shortest path passes through S
            } else {
                1.0 - sigma_b[t as usize] / sigma[t as usize]
            };
            total += covered;
        }
    }
    total
}

/// Outcome of the greedy group-betweenness maximizers.
#[derive(Clone, Debug)]
pub struct BetweennessOutcome {
    /// Selected group, in selection order.
    pub group: Vec<VertexId>,
    /// Final `GB(S)`.
    pub score: f64,
    /// Marginal-gain evaluations performed.
    pub gain_evaluations: u64,
    /// Candidate-pool size (`n`, or the skyline size when pruned).
    pub pool_size: usize,
}

fn greedy_over_pool(g: &Graph, k: usize, pool: Vec<VertexId>) -> BetweennessOutcome {
    let k = k.min(pool.len());
    let mut group: Vec<VertexId> = Vec::with_capacity(k);
    let mut best_score = 0.0;
    let mut evals = 0u64;
    for _ in 0..k {
        let mut best: Option<(f64, VertexId)> = None;
        for &u in &pool {
            if group.contains(&u) {
                continue;
            }
            evals += 1;
            group.push(u);
            let score = group_betweenness(g, &group);
            group.pop();
            let better = match best {
                None => true,
                Some((bs, bv)) => score > bs || (score == bs && u < bv),
            };
            if better {
                best = Some((score, u));
            }
        }
        let Some((score, v)) = best else { break };
        group.push(v);
        best_score = score;
    }
    BetweennessOutcome {
        group,
        score: best_score,
        gain_evaluations: evals,
        pool_size: pool.len(),
    }
}

/// Plain greedy group-betweenness maximization (`BaseGB`): evaluates
/// every remaining vertex each round. `O(k·n²·m)` — small graphs only.
pub fn base_gb(g: &Graph, k: usize) -> BetweennessOutcome {
    greedy_over_pool(g, k, g.vertices().collect())
}

/// Skyline-pruned greedy (`NeiSkyGB`): candidates restricted to the
/// neighborhood skyline, the Sec. IV-D extension. The rerouting argument
/// behind Lemma 3/4 carries over: a shortest path ending at a dominated
/// vertex `v` reroutes through any adjacent dominator with equal length,
/// so skyline vertices cover at least as many paths.
pub fn nei_sky_gb(g: &Graph, k: usize) -> BetweennessOutcome {
    let skyline = filter_refine_sky(g, &RefineConfig::default()).skyline;
    greedy_over_pool(g, k, skyline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_graph::generators::special::{clique, cycle, path, star};
    use nsky_graph::generators::{erdos_renyi, leafy_preferential};
    use nsky_graph::Graph;

    #[test]
    fn brandes_known_values() {
        // Star: the hub lies on every leaf pair: C(n−1, 2).
        let b = betweenness(&star(6));
        assert_eq!(b[0], 10.0);
        assert!(b[1..].iter().all(|&x| x == 0.0));
        // Path P4: interior vertices carry 2 pairs each.
        let b = betweenness(&path(4));
        assert_eq!(b, vec![0.0, 2.0, 2.0, 0.0]);
        // Clique: no interior vertices on any shortest path.
        let b = betweenness(&clique(5));
        assert!(b.iter().all(|&x| x == 0.0));
        // Cycle C5: each vertex bisects one pair's two paths: 2·(1/2)...
        let b = betweenness(&cycle(5));
        for &x in &b {
            assert!((x - 1.0).abs() < 1e-9, "C5 betweenness {b:?}");
        }
    }

    #[test]
    fn group_betweenness_known_values() {
        // Star hub covers all 10 leaf pairs.
        assert_eq!(group_betweenness(&star(6), &[0]), 10.0);
        // A leaf covers nothing.
        assert_eq!(group_betweenness(&star(6), &[1]), 0.0);
        // Two path interiors of P5 cover all cross pairs: pairs not
        // within {0,1} or {3,4}... S = {1,3}: remaining 0,2,4: pairs
        // (0,2): path through 1 ⇒ 1; (2,4): through 3 ⇒ 1; (0,4) ⇒ 1.
        assert_eq!(group_betweenness(&path(5), &[1, 3]), 3.0);
        // Empty group covers nothing; full group trivially zero terms.
        assert_eq!(group_betweenness(&path(5), &[]), 0.0);
    }

    #[test]
    fn group_betweenness_counts_partial_coverage() {
        // C4: pairs of opposite corners have two shortest paths; one
        // blocker covers half of each opposite pair's flow.
        let g = cycle(4);
        let s = group_betweenness(&g, &[0]);
        // Remaining vertices 1,2,3: pair (1,3): paths via 0 and 2 ⇒ 1/2
        // covered; pairs (1,2), (2,3) adjacent ⇒ 0.
        assert!((s - 0.5).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn greedy_picks_the_star_hub() {
        let out = base_gb(&star(8), 1);
        assert_eq!(out.group, vec![0]);
        let out = nei_sky_gb(&star(8), 1);
        assert_eq!(out.group, vec![0]);
        assert_eq!(out.pool_size, 1, "skyline of a star is the hub");
    }

    #[test]
    fn pruned_greedy_matches_base_scores() {
        for seed in 0..3 {
            let g = leafy_preferential(120, 0.9, 1.0, 5, seed);
            for k in [1usize, 3] {
                let base = base_gb(&g, k);
                let nei = nei_sky_gb(&g, k);
                assert!(
                    nei.score >= base.score - 1e-9,
                    "seed {seed} k {k}: {} < {}",
                    nei.score,
                    base.score
                );
                assert!(nei.gain_evaluations <= base.gain_evaluations);
            }
        }
        let g = erdos_renyi(60, 0.1, 7);
        let base = base_gb(&g, 2);
        let nei = nei_sky_gb(&g, 2);
        assert!(nei.score >= base.score - 1e-9);
    }

    #[test]
    fn disconnected_pairs_do_not_contribute() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        // S = {1}: covers pair (0,2) only; unreachable pairs skipped.
        assert_eq!(group_betweenness(&g, &[1]), 1.0);
    }
}
