//! The group-measure abstraction.
//!
//! Every measure the paper's pruning applies to (Sec. IV-D) is a sum of a
//! non-increasing function of the shortest-path distance `d(v, S)` over
//! `v ∉ S`, possibly with a final transform. The greedy engine only needs:
//!
//! * [`GroupMeasure::contribution`] — the per-vertex term `f(d)`;
//! * [`GroupMeasure::maximize_total`] — whether a larger raw total is
//!   better (harmonic/decay) or worse (closeness minimizes distance sum);
//! * [`GroupMeasure::score`] — the reported score.

/// A shortest-path-distance based group centrality measure.
pub trait GroupMeasure: Copy + Send + Sync + 'static {
    /// Human-readable name for harness output.
    const NAME: &'static str;

    /// Per-vertex contribution `f(d(v, S))` to the raw total, for
    /// `v ∉ S`. `d == u32::MAX` means unreachable; `n` is the vertex
    /// count (used for the closeness penalty).
    fn contribution(self, d: u32, n: usize) -> f64;

    /// `true` if greedy should maximize the raw total (harmonic, decay);
    /// `false` if it should minimize it (closeness distance sum).
    fn maximize_total(self) -> bool;

    /// Final score from the raw total (e.g. `n / total` for closeness).
    fn score(self, total: f64, n: usize) -> f64;
}

/// Group closeness centrality (paper Definition 7):
/// `GC(S) = n / Σ_{v∉S} d(v, S)`; unreachable vertices contribute a
/// penalty distance of `n`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Closeness;

impl GroupMeasure for Closeness {
    const NAME: &'static str = "group-closeness";

    #[inline]
    fn contribution(self, d: u32, n: usize) -> f64 {
        if d == u32::MAX {
            // CAST: n < 2^32 vertices, exact in f64.
            n as f64
        } else {
            d as f64
        }
    }

    fn maximize_total(self) -> bool {
        false
    }

    fn score(self, total: f64, n: usize) -> f64 {
        if total <= 0.0 {
            f64::INFINITY
        } else {
            // CAST: n < 2^32 vertices, exact in f64.
            n as f64 / total
        }
    }
}

/// Group harmonic centrality (paper Definition 9):
/// `GH(S) = Σ_{v∉S} 1 / d(v, S)`; unreachable vertices contribute 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Harmonic;

impl GroupMeasure for Harmonic {
    const NAME: &'static str = "group-harmonic";

    #[inline]
    fn contribution(self, d: u32, _n: usize) -> f64 {
        if d == u32::MAX || d == 0 {
            0.0
        } else {
            1.0 / d as f64
        }
    }

    fn maximize_total(self) -> bool {
        true
    }

    fn score(self, total: f64, _n: usize) -> f64 {
        total
    }
}

/// Group decay centrality `Σ_{v∉S} δ^{d(v,S)}`, `0 < δ < 1` — a third
/// shortest-path measure demonstrating that the skyline pruning extends
/// beyond the two the paper evaluates (Sec. IV-D).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Decay {
    /// The decay factor `δ ∈ (0, 1)`.
    pub delta: f64,
}

impl Decay {
    /// A decay measure with factor `delta`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < delta < 1`.
    pub fn new(delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "decay factor must lie in (0,1), got {delta}"
        );
        Decay { delta }
    }
}

impl GroupMeasure for Decay {
    const NAME: &'static str = "group-decay";

    #[inline]
    fn contribution(self, d: u32, _n: usize) -> f64 {
        if d == u32::MAX {
            0.0
        } else {
            self.delta.powf(f64::from(d))
        }
    }

    fn maximize_total(self) -> bool {
        true
    }

    fn score(self, total: f64, _n: usize) -> f64 {
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closeness_contributions() {
        assert_eq!(Closeness.contribution(3, 100), 3.0);
        assert_eq!(Closeness.contribution(u32::MAX, 100), 100.0);
        assert!(!Closeness.maximize_total());
        assert_eq!(Closeness.score(50.0, 100), 2.0);
        assert!(Closeness.score(0.0, 100).is_infinite());
    }

    #[test]
    fn harmonic_contributions() {
        assert_eq!(Harmonic.contribution(2, 10), 0.5);
        assert_eq!(Harmonic.contribution(u32::MAX, 10), 0.0);
        assert!(Harmonic.maximize_total());
        assert_eq!(Harmonic.score(7.5, 10), 7.5);
    }

    #[test]
    fn decay_contributions() {
        let m = Decay::new(0.5);
        assert_eq!(m.contribution(1, 10), 0.5);
        assert_eq!(m.contribution(3, 10), 0.125);
        assert_eq!(m.contribution(u32::MAX, 10), 0.0);
        assert!(m.maximize_total());
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn decay_rejects_out_of_range() {
        Decay::new(1.0);
    }
}
