//! Example-only crate; see the example binaries.
