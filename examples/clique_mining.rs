//! Mining the largest collaboration cliques: MC-BRB-style search vs the
//! skyline-seeded `NeiSkyMC`, plus top-k maximum cliques (paper
//! Sec. IV-C).
//!
//! Run with `cargo run --release -p nsky-examples --example clique_mining`.

use nsky_clique::{is_clique, mc_brb, nei_sky_mc, top_k_cliques, TopkMode};
use nsky_graph::generators::affiliation_model;
use std::time::Instant;

fn main() {
    // A co-authorship-style network: 3 000 authors, papers of 4–9
    // authors, veterans re-picked preferentially.
    let g = affiliation_model(3_000, 4, 9, 0.55, 7);
    println!(
        "collaboration network: n={}, m={}, dmax={}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    let t0 = Instant::now();
    let (base_clique, base_stats) = mc_brb(&g);
    let t_base = t0.elapsed();
    let t0 = Instant::now();
    let pruned = nei_sky_mc(&g);
    let t_pruned = t0.elapsed();

    println!("\nMaximum clique:");
    println!(
        "  MC-BRB  : ω = {}, {} root searches, {:?}",
        base_clique.len(),
        base_stats.root_calls,
        t_base
    );
    println!(
        "  NeiSkyMC: ω = {}, {} roots over {} skyline seeds, {:?}",
        pruned.clique.len(),
        pruned.stats.root_calls,
        pruned.skyline_size,
        t_pruned
    );
    assert_eq!(base_clique.len(), pruned.clique.len());
    assert!(is_clique(&g, &pruned.clique));
    println!("  members: {:?}", pruned.clique);

    // Top-5 maximum cliques with incremental skyline maintenance.
    let out = top_k_cliques(&g, 5, TopkMode::NeiSky);
    println!("\nTop-5 cliques (NeiSkyTopkMCC):");
    for (i, (c, seed)) in out.cliques.iter().zip(&out.seeds).enumerate() {
        println!("  #{}: size {} (seed v{seed}): {:?}", i + 1, c.len(), c);
    }
}
