//! The paper's Fig. 13 case studies: the Zachary karate club (embedded
//! original) and a Madrid-bombing-style contact network (synthetic
//! stand-in), with a degree/skyline breakdown.
//!
//! Run with `cargo run -p nsky-examples --example skyline_case_study`.

use nsky_datasets::{bombing, karate};
use nsky_graph::Graph;
use nsky_skyline::{filter_refine_sky, RefineConfig};

fn study(name: &str, g: &Graph) {
    let r = filter_refine_sky(g, &RefineConfig::default());
    let mask = r.membership_mask();
    println!(
        "\n{name}: n={}, m={}, skyline {}/{} ({:.0}%)",
        g.num_vertices(),
        g.num_edges(),
        r.len(),
        g.num_vertices(),
        100.0 * r.len() as f64 / g.num_vertices() as f64
    );
    println!("  skyline vertices: {:?}", r.skyline);

    // Degree breakdown: low-degree vertices are the dominated ones.
    let mut rows: Vec<(usize, usize, usize)> = Vec::new(); // deg, sky, dom
    for u in g.vertices() {
        let d = g.degree(u);
        if rows.len() <= d {
            rows.resize(d + 1, (0, 0, 0));
        }
        rows[d].0 = d;
        if mask[u as usize] {
            rows[d].1 += 1;
        } else {
            rows[d].2 += 1;
        }
    }
    println!("  degree | skyline | dominated");
    for (d, sky, dom) in rows.into_iter().filter(|r| r.1 + r.2 > 0) {
        println!("  {d:>6} | {sky:>7} | {dom:>9}");
    }
}

fn main() {
    study("Karate (original)", &karate());
    study("Bombing (synthetic stand-in)", &bombing());
}
