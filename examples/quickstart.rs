//! Quickstart: compute the neighborhood skyline of a small graph and
//! inspect domination relationships.
//!
//! Run with `cargo run -p nsky-examples --example quickstart`.

use nsky_graph::Graph;
use nsky_skyline::domination::{classify_pair, PairOrder};
use nsky_skyline::{base_sky, filter_refine_sky, RefineConfig};

fn main() {
    // A small social network: a tight triangle of organizers (0, 1, 2),
    // two followers (3, 4) whose contacts are subsets of an organizer's,
    // and an outsider (5) linked to vertex 1.
    let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (3, 0), (3, 1), (4, 0), (1, 5)]);

    println!("graph: n={}, m={}", g.num_vertices(), g.num_edges());

    // The production algorithm: filter-refine with bloom filters.
    let skyline = filter_refine_sky(&g, &RefineConfig::default());
    println!("skyline R = {:?}", skyline.skyline);
    println!(
        "candidates C = {:?} (Lemma 1: R ⊆ C)",
        skyline.candidates.as_ref().unwrap()
    );

    // Every dominated vertex records a witness dominator.
    for u in g.vertices() {
        let o = skyline.dominator[u as usize];
        if o != u {
            println!("  v{u} is dominated by v{o} (N(v{u}) ⊆ N[v{o}])");
        }
    }

    // Pairwise classification per Definition 2.
    match classify_pair(&g, 3, 0) {
        PairOrder::DominatedBy => println!("v3 ≤ v0: follower 3 is dominated by organizer 0"),
        other => println!("unexpected order: {other:?}"),
    }

    // The baseline agrees, at O(m·dmax) cost.
    assert_eq!(base_sky(&g).skyline, skyline.skyline);
    println!("BaseSky agrees with FilterRefineSky ✓");
}
