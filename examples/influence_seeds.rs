//! Selecting influence seeds with group centrality maximization:
//! `Greedy++`-style lazy greedy vs the skyline-pruned `NeiSkyGC`/`NeiSkyGH`
//! (paper Sec. IV-A/B) on a synthetic social network.
//!
//! Run with `cargo run --release -p nsky-examples --example influence_seeds`.

use nsky_centrality::greedy::{greedy_group, GreedyOptions};
use nsky_centrality::group::group_score;
use nsky_centrality::measure::{Closeness, Harmonic};
use nsky_centrality::neisky::{nei_sky_gc, nei_sky_gh};
use nsky_graph::generators::leafy_preferential;
use std::time::Instant;

fn main() {
    // A 5 000-member social network: most members follow a few hubs.
    let g = leafy_preferential(5_000, 0.94, 1.5, 8, 42);
    println!(
        "network: n={}, m={}, dmax={}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );
    let k = 10;

    // --- Group closeness (GCM) ---
    let t0 = Instant::now();
    let base = greedy_group(&g, Closeness, k, &GreedyOptions::optimized());
    let t_base = t0.elapsed();
    let t0 = Instant::now();
    let pruned = nei_sky_gc(&g, k);
    let t_pruned = t0.elapsed();
    println!("\nGroup closeness maximization (k = {k}):");
    println!(
        "  Greedy++  : GC = {:.4}, {} gain evaluations, {:?}",
        base.score, base.gain_evaluations, t_base
    );
    println!(
        "  NeiSkyGC  : GC = {:.4}, {} gain evaluations over r = {} skyline vertices, {:?}",
        pruned.greedy.score, pruned.greedy.gain_evaluations, pruned.skyline_size, t_pruned
    );
    assert!(pruned.greedy.score >= base.score - 1e-9);
    println!("  seeds: {:?}", pruned.greedy.group);

    // --- Group harmonic (GHM) ---
    let base = greedy_group(&g, Harmonic, k, &GreedyOptions::optimized());
    let pruned = nei_sky_gh(&g, k);
    println!("\nGroup harmonic maximization (k = {k}):");
    println!("  Greedy-H  : GH = {:.2}", base.score);
    println!(
        "  NeiSkyGH  : GH = {:.2} (evaluations {} → {})",
        pruned.greedy.score, base.gain_evaluations, pruned.greedy.gain_evaluations
    );

    // Re-evaluate the chosen group independently.
    let check = group_score(&g, Harmonic, &pruned.greedy.group);
    assert!((check - pruned.greedy.score).abs() < 1e-9);
    println!("  independent re-evaluation matches ✓");
}
