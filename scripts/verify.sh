#!/usr/bin/env bash
# Full verification gate for the neighborhood-skyline workspace.
#
# Every step works offline: the workspace declares zero registry
# dependencies (rule R1, enforced by the policy linter below).
#
#   ./scripts/verify.sh          # everything
#   NSKY_QUICK=1 ./scripts/verify.sh   # shrink the test sweeps
set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo fmt --all -- --check
step cargo clippy --workspace --all-targets -- -D warnings
step cargo run -q -p nsky-xtask -- lint
# API-surface gate: each library crate's public surface must match its
# committed api/<crate>.surface baseline (regenerate intentional
# changes with `cargo xtask api --bless` and commit the diff).
step cargo run -q -p nsky-xtask -- api --check
step cargo build --release
step cargo test -q
# Twin-coherence report gate: the per-kernel twin census must match the
# committed api/twins.report baseline (regenerate intentional changes
# with `cargo xtask twins --bless` and commit the diff).
step cargo run -q -p nsky-xtask -- twins --check
# Lock-landscape gate: the per-crate mutex/condvar census and the
# acquired-while-holding order edges must match the committed
# api/locks.report baseline (regenerate intentional changes with
# `cargo xtask locks --bless` and commit the diff).
step cargo run -q -p nsky-xtask -- locks --check
# Policy-engine self-tests, run by name so a harness filter can never
# silently drop them: the lexer torture suite, the per-rule fixture
# workspaces (including the R12 injected-rename drift fixture), the
# flow-engine torture suite, and the call-graph resolution suite.
step cargo test -q -p nsky-xtask --test lexer
step cargo test -q -p nsky-xtask --test fixtures
step cargo test -q -p nsky-xtask --test cfg
step cargo test -q -p nsky-xtask --test callgraph
# Concurrency-discipline gate, run by name: the committed lock report,
# the `locks` CLI, the r17–r20 fixture landscapes, and the `lint --json`
# counters for the four concurrency rules.
step cargo test -q -p nsky-xtask --test locks
# Crash-safety gate, run by name so a test-harness filter can never
# silently drop it: every kernel killed at every poll point must resume
# to the uninterrupted answer, and every corrupt checkpoint must be
# rejected with a typed error.
step cargo test -q -p nsky-integration --test snapshot_faults
# Observability gate, likewise run by name: every counter the kernels
# flush must satisfy the accounting identities, NoopRecorder twins must
# match their uninstrumented entry points field-for-field, and the JSON
# run report must reject truncated/bit-flipped payloads.
step cargo test -q -p nsky-integration --test obs_invariants
# Composed-fault gate, likewise run by name: every kernel driven through
# its single `*_with(ctx)` entry point must survive every single fault
# and every pairwise fault combination (deadline, memory cap, cancel,
# checkpoint, damaged resume) with sound partial answers, graceful
# degradation of unusable checkpoints, and byte-identical no-fault runs.
step cargo test -q -p nsky-integration --test fault_matrix
# Dynamic-maintenance gate, likewise run by name: the incremental
# engine must agree with a from-scratch recompute after every single
# delta and after randomized batches across generator families, honor
# inverse round-trips, and turn mid-batch deadline trips into exact
# committed-prefix answers that resume to convergence.
step cargo test -q -p nsky-integration --test dynamic_differential
# Serving gate, likewise run by name: the byzantine-client matrix (torn
# frames, garbage, oversized frames, slow loris, floods past the shed
# threshold, mid-kernel disconnects, shutdown drain) must produce typed
# errors and sound partial answers with zero panics and zero leaked
# worker threads.
step cargo test -q -p nsky-integration --test server_faults
# Loadgen smoke: the open-loop generator must drive an in-process server
# end to end with a fault mix and exit zero (healthy requests all
# succeed) even in quick mode.
step env NSKY_QUICK=1 cargo run -q --release -p nsky-server --bin nsky-loadgen -- --fault-mix 10

echo
echo "verify: all gates passed"
