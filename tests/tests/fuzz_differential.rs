//! Differential fuzzing with an *independent* randomness source (an
//! inline xorshift64*, not the library's own SplitMix64): random
//! multigraph edge soups are normalized by the builder and every skyline
//! algorithm must agree.
//!
//! The generator is deliberately implemented here rather than imported:
//! the point of this suite is that the workload stream shares no code
//! with the generators under test, and being std-only keeps the suite
//! hermetic (DESIGN.md §3 dependency policy).

use nsky_graph::{Graph, VertexId};
use nsky_setjoin::lc_join_skyline;
use nsky_skyline::oracle::naive_skyline;
use nsky_skyline::{
    base_sky, cset_sky, filter_refine_sky, filter_refine_sky_par, two_hop_sky, RefineConfig,
};

/// Minimal xorshift64* stream (Vigna 2016), independent of
/// `nsky_graph::prng::SplitMix64` by construction.
struct XorShift64Star(u64);

impl XorShift64Star {
    fn new(seed: u64) -> Self {
        // xorshift state must be non-zero.
        XorShift64Star(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

fn random_graph(rng: &mut XorShift64Star) -> Graph {
    let n = rng.range(1, 60);
    let m = rng.range(0, 200);
    let edges: Vec<(VertexId, VertexId)> = (0..m)
        .map(|_| (rng.range(0, n) as u32, rng.range(0, n) as u32))
        .collect();
    Graph::from_edges(n, edges)
}

#[test]
fn five_hundred_random_graphs_agree() {
    let mut rng = XorShift64Star::new(0xFACADE);
    for case in 0..500 {
        let g = random_graph(&mut rng);
        let truth = naive_skyline(&g).skyline;
        let cfg = RefineConfig::default();
        assert_eq!(filter_refine_sky(&g, &cfg).skyline, truth, "case {case}");
        assert_eq!(base_sky(&g).skyline, truth, "case {case}");
        assert_eq!(cset_sky(&g).skyline, truth, "case {case}");
        assert_eq!(two_hop_sky(&g).skyline, truth, "case {case}");
        assert_eq!(lc_join_skyline(&g).skyline, truth, "case {case}");
    }
}

/// A chain of closed-twin pairs: vertices `2i` and `2i+1` share the
/// same closed neighborhood (mutual domination — the filter phase's
/// tie-break has to keep exactly the right one), and consecutive pairs
/// are fully connected.
fn twin_chain(k: usize) -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for i in 0..k {
        let v = (2 * i) as u32;
        let t = v + 1;
        edges.push((v, t));
        if i + 1 < k {
            for a in [v, t] {
                for b in [v + 2, v + 3] {
                    edges.push((a, b));
                }
            }
        }
    }
    Graph::from_edges(2 * k, edges)
}

/// A random soup plus trailing isolated vertices: degree-0 vertices
/// have an empty closed-neighborhood difference against everyone, the
/// domination definition's boundary case.
fn with_isolated(rng: &mut XorShift64Star, extra: usize) -> Graph {
    let core = random_graph(rng);
    let n = core.num_vertices() + extra;
    let edges: Vec<(VertexId, VertexId)> = core.edges().collect();
    Graph::from_edges(n, edges)
}

/// Two hubs joined by a bridge, each carrying its own leaves: every
/// leaf is dominated by its hub, and the hubs dominate across the
/// bridge only when the leaf counts let them.
fn double_star(a: usize, b: usize) -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = vec![(0, 1)];
    for leaf in 0..a {
        edges.push((0, (2 + leaf) as u32));
    }
    for leaf in 0..b {
        edges.push((1, (2 + a + leaf) as u32));
    }
    Graph::from_edges(2 + a + b, edges)
}

/// Complete bipartite `K_{a,b}`: every vertex on the smaller side
/// dominates every vertex on the larger side, so the skyline collapses
/// to one side (or everything when `a == b`).
fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for u in 0..a {
        for v in 0..b {
            edges.push((u as u32, (a + v) as u32));
        }
    }
    Graph::from_edges(a + b, edges)
}

/// Adversarial families aimed at the filter phase's pruning rules:
/// `BaseSky`, `FilterRefineSky` and the parallel skyline must agree
/// with the naive oracle on all of them.
#[test]
fn adversarial_families_agree() {
    let mut rng = XorShift64Star::new(0x5EED_CAFE);
    let mut graphs: Vec<(String, Graph)> = Vec::new();
    for _ in 0..8 {
        let k = rng.range(1, 12);
        graphs.push((format!("twin_chain({k})"), twin_chain(k)));
        let extra = rng.range(1, 6);
        graphs.push((
            format!("isolated(+{extra})"),
            with_isolated(&mut rng, extra),
        ));
        let (a, b) = (rng.range(1, 9), rng.range(1, 9));
        graphs.push((format!("double_star({a},{b})"), double_star(a, b)));
        graphs.push((format!("k_bipartite({a},{b})"), complete_bipartite(a, b)));
    }
    let cfg = RefineConfig::default();
    for (label, g) in graphs {
        let truth = naive_skyline(&g).skyline;
        let refine = filter_refine_sky(&g, &cfg);
        assert_eq!(refine.skyline, truth, "{label}: refine");
        assert_eq!(base_sky(&g).skyline, truth, "{label}: base");
        assert_eq!(
            filter_refine_sky_par(&g, &cfg, 3).skyline,
            truth,
            "{label}: par"
        );
        // The filter phase may over-approximate but never drop a
        // skyline vertex.
        assert!(
            refine.stats.candidate_count >= truth.len(),
            "{label}: filter dropped a skyline vertex"
        );
    }
}

#[test]
fn incremental_removals_match_from_scratch() {
    use nsky_skyline::incremental::DynamicSkyline;
    let mut rng = XorShift64Star::new(0xBEEF);
    for case in 0..60 {
        let g = random_graph(&mut rng);
        if g.num_vertices() < 3 {
            continue;
        }
        let mut dyn_sky = DynamicSkyline::new(&g);
        let mut removed: Vec<VertexId> = Vec::new();
        for _ in 0..(g.num_vertices() / 2).min(8) {
            let alive: Vec<VertexId> = g.vertices().filter(|&u| dyn_sky.is_alive(u)).collect();
            let x = alive[rng.range(0, alive.len())];
            dyn_sky.remove_vertex(x);
            removed.push(x);
            // Reference: recompute on the induced residual graph.
            let keep: Vec<VertexId> = g.vertices().filter(|u| !removed.contains(u)).collect();
            let (sub, map) = nsky_graph::ops::induced_subgraph(&g, &keep);
            let expect: Vec<VertexId> = naive_skyline(&sub)
                .skyline
                .iter()
                .map(|&u| map[u as usize])
                .collect();
            assert_eq!(
                dyn_sky.skyline(),
                expect,
                "case {case}, removed {removed:?}"
            );
        }
    }
}
