//! Deterministic fault-injection suite for `nsky-server`, in the spirit
//! of `fault_matrix.rs`: byzantine clients driven against a real
//! in-process server.
//!
//! Asserts, across the full matrix (torn frames, garbage bytes,
//! oversized frames, half-open connects, mid-response disconnects,
//! floods past the shed threshold):
//!
//! - zero panics and zero leaked worker threads — every test ends in
//!   `shutdown_and_drain()`, which joins every server thread;
//! - partial-answer soundness — a deadline-tripped skyline is a subset
//!   of the full skyline computed in-process;
//! - healthy-client latency stays bounded while faulty clients
//!   misbehave;
//! - load past the shed threshold yields `overloaded` + `retry_after_ms`
//!   while an in-flight healthy request still completes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use nsky_server::json::{self, Value};
use nsky_server::{Server, ServerConfig, ServerHandle};
use nsky_skyline::obs::RunReport;
use nsky_skyline::{filter_refine_sky, RefineConfig};

/// Small, aggressive config: faults resolve in milliseconds.
fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 4,
        max_frame_bytes: 4096,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        drain_deadline: Duration::from_millis(500),
        retry_after_ms: 25,
        monitor_poll: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

fn start_karate(config: ServerConfig) -> ServerHandle {
    Server::start(nsky_datasets::karate(), config).expect("server must start")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set client read timeout");
    stream
}

/// One-shot healthy request: fresh connection, one frame, one response.
fn request(addr: SocketAddr, line: &str) -> Value {
    let mut stream = connect(addr);
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    json::parse(response.trim_end()).expect("response must be JSON")
}

/// Polls `stats` until `pred` holds or five seconds pass.
fn wait_for(handle: &ServerHandle, pred: impl Fn(&nsky_server::ServerStats) -> bool) {
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(5) {
        if pred(&handle.stats()) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!(
        "condition not reached within 5s; stats = {:?}",
        handle.stats()
    );
}

fn skyline_ids(resp: &Value) -> Vec<u32> {
    resp.get("result")
        .and_then(|r| r.get("skyline"))
        .and_then(Value::as_array)
        .expect("skyline array")
        .iter()
        .filter_map(Value::as_u64)
        .map(|v| u32::try_from(v).expect("vertex id"))
        .collect()
}

#[test]
fn healthy_round_trip_all_ops_with_valid_reports() {
    let handle = start_karate(test_config());
    let addr = handle.addr();
    let full = filter_refine_sky(&nsky_datasets::karate(), &RefineConfig::default());

    let resp = request(addr, r#"{"op":"skyline"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(resp.get("partial").and_then(Value::as_bool), Some(false));
    assert_eq!(skyline_ids(&resp), full.skyline);

    // The embedded report is a checksum-valid RunReport v1.
    let report_text = resp
        .get("report")
        .and_then(Value::as_str)
        .expect("report field");
    let report = RunReport::from_json(report_text).expect("checksum-valid report");
    assert_eq!(report.kernel, "server/filter_refine_sky");
    assert!(report.counter("candidates_emitted").is_some());

    for (line, field) in [
        (r#"{"op":"skyline","algorithm":"base"}"#, "skyline"),
        (r#"{"op":"dominates","u":33,"v":8}"#, "dominates"),
        (r#"{"op":"clique"}"#, "clique"),
        (r#"{"op":"clique","prune":false}"#, "clique"),
        (r#"{"op":"group","k":2}"#, "group"),
        (r#"{"op":"group","k":2,"measure":"harmonic"}"#, "group"),
    ] {
        let resp = request(addr, line);
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "request {line} failed: {resp}"
        );
        assert!(
            resp.get("result").and_then(|r| r.get(field)).is_some(),
            "request {line} missing result.{field}: {resp}"
        );
    }

    let resp = request(addr, r#"{"op":"ping"}"#);
    assert_eq!(
        resp.get("result").and_then(|r| r.get("pong")),
        Some(&Value::Bool(true))
    );

    // Pipelining: two requests on one connection, two responses.
    let mut stream = connect(addr);
    stream
        .write_all(b"{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n")
        .expect("pipelined send");
    let mut reader = BufReader::new(stream);
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("pipelined response");
        let v = json::parse(line.trim_end()).expect("pipelined JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    }

    let stats = handle.shutdown_and_drain();
    assert!(stats.completed >= 9);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn deadline_partials_are_sound_subsets_never_errors() {
    let handle = start_karate(test_config());
    let addr = handle.addr();
    let full = filter_refine_sky(&nsky_datasets::karate(), &RefineConfig::default());

    // An exact-poll trip: partial, never an error.
    let resp = request(
        addr,
        r#"{"op":"skyline","trip_after":1,"check_interval":1}"#,
    );
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(resp.get("partial").and_then(Value::as_bool), Some(true));
    let partial = skyline_ids(&resp);
    assert!(
        partial.iter().all(|v| full.skyline.contains(v)),
        "partial {partial:?} must be a subset of {:?}",
        full.skyline
    );
    assert!(partial.len() < full.skyline.len());

    // A deadline already expired at entry: still a sound response.
    let resp = request(addr, r#"{"op":"skyline","timeout_ms":0}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(resp.get("partial").and_then(Value::as_bool), Some(true));
    let partial = skyline_ids(&resp);
    assert!(partial.iter().all(|v| full.skyline.contains(v)));

    // The partial's report still decodes and names the trip.
    let report = RunReport::from_json(
        resp.get("report")
            .and_then(Value::as_str)
            .expect("report on partial"),
    )
    .expect("partial report is checksum-valid");
    assert_eq!(report.completion, "DeadlineExceeded");

    let stats = handle.shutdown_and_drain();
    assert_eq!(stats.partial, 2);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn byzantine_clients_get_typed_errors_and_healthy_traffic_survives() {
    let handle = start_karate(test_config());
    let addr = handle.addr();
    let healthy = |label: &str| {
        let started = Instant::now();
        let resp = request(addr, r#"{"op":"skyline"}"#);
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "healthy request after {label} failed: {resp}"
        );
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "healthy latency after {label} unbounded: {elapsed:?}"
        );
    };

    // Torn frame: half a request, then close. The server reads EOF
    // mid-frame and tears down without a response.
    {
        let mut stream = connect(addr);
        stream.write_all(b"{\"op\":\"sky").expect("torn send");
        drop(stream);
    }
    healthy("torn frame");

    // Garbage bytes: typed malformed_frame error, then teardown.
    {
        let mut stream = connect(addr);
        stream
            .write_all(b"\x01\x02 not json at all\n")
            .expect("garbage send");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("error response");
        let v = json::parse(line.trim_end()).expect("typed error is JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("malformed_frame")
        );
        // Teardown: the next read returns EOF, not another frame.
        assert_eq!(reader.read_line(&mut line).expect("EOF after teardown"), 0);
    }
    healthy("garbage bytes");

    // Oversized frame: rejected before the newline ever arrives.
    {
        let mut stream = connect(addr);
        let junk = vec![b'x'; 64 * 1024];
        let _ = stream.write_all(&junk);
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // The server may close before draining our write; both a typed
        // error line and an empty read are acceptable client views.
        if reader.read_line(&mut line).unwrap_or(0) > 0 {
            let v = json::parse(line.trim_end()).expect("typed error is JSON");
            assert_eq!(
                v.get("error").and_then(Value::as_str),
                Some("oversized_frame")
            );
        }
    }
    healthy("oversized frame");

    // Slow loris / half-open: connect, send half a frame, stall. The
    // read timeout tears it down with a typed error.
    {
        let mut stream = connect(addr);
        stream.write_all(b"{\"op\"").expect("loris send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) > 0 {
            let v = json::parse(line.trim_end()).expect("typed error is JSON");
            assert_eq!(v.get("error").and_then(Value::as_str), Some("read_timeout"));
        }
    }
    healthy("slow loris");

    // Mid-response disconnect: send a request, vanish immediately.
    {
        let mut stream = connect(addr);
        stream
            .write_all(b"{\"op\":\"skyline\"}\n")
            .expect("disconnect send");
        drop(stream);
    }
    healthy("mid-response disconnect");

    // The typed-error counters saw the matrix (torn + garbage +
    // oversized + loris; the mid-response disconnect may complete).
    wait_for(&handle, |s| s.protocol_errors >= 4);

    let stats = handle.shutdown_and_drain();
    assert!(stats.protocol_errors >= 4);
    assert!(stats.completed >= 5, "healthy traffic: {stats:?}");
}

#[test]
fn flood_past_shed_threshold_yields_overloaded_with_backoff_hint() {
    // One worker, tiny queue: the shed path is deterministic.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        read_timeout: Duration::from_secs(3),
        ..test_config()
    };
    let retry_hint = config.retry_after_ms;
    let handle = start_karate(config);
    let addr = handle.addr();

    // A healthy in-flight connection claims the only worker (FIFO: it
    // was queued first, so the worker is parked reading from it).
    let mut held = connect(addr);
    wait_for(&handle, |s| s.accepted == 1 && s.queued == 0);

    // Fill the bounded queue with idle connections.
    let parked: Vec<TcpStream> = (0..2).map(|_| connect(addr)).collect();
    wait_for(&handle, |s| s.queued == 2);

    // The next connection must be shed: explicit overloaded response
    // with the configured Retry-After hint, then close.
    let flooded = connect(addr);
    let mut reader = BufReader::new(flooded);
    let mut line = String::new();
    reader.read_line(&mut line).expect("shed response");
    let v = json::parse(line.trim_end()).expect("overloaded is JSON");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(v.get("error").and_then(Value::as_str), Some("overloaded"));
    assert_eq!(
        v.get("retry_after_ms").and_then(Value::as_u64),
        Some(retry_hint)
    );
    let mut rest = String::new();
    assert_eq!(
        reader.read_to_string(&mut rest).expect("shed close"),
        0,
        "shed connection must be closed"
    );
    wait_for(&handle, |s| s.shed >= 1);

    // The held healthy connection still completes within its deadline
    // while the server is shedding.
    let started = Instant::now();
    held.write_all(b"{\"op\":\"skyline\",\"timeout_ms\":2000}\n")
        .expect("held send");
    let mut held_reader = BufReader::new(held);
    let mut response = String::new();
    held_reader.read_line(&mut response).expect("held response");
    let v = json::parse(response.trim_end()).expect("held response JSON");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("partial").and_then(Value::as_bool), Some(false));
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "held request exceeded its deadline"
    );

    drop(parked);
    let stats = handle.shutdown_and_drain();
    assert!(stats.shed >= 1);
}

#[test]
fn client_disconnect_raises_cancel_mid_kernel() {
    // A graph big enough that the group kernel cannot finish before the
    // monitor notices the disconnect (~10ms): the cancel must stop it.
    let g = nsky_graph::generators::leafy_preferential(5_000, 0.9, 1.0, 8, 42);
    let handle = Server::start(g, test_config()).expect("server must start");
    let addr = handle.addr();

    let mut stream = connect(addr);
    stream
        .write_all(b"{\"op\":\"group\",\"k\":4,\"lazy\":false,\"check_interval\":1}\n")
        .expect("send long request");
    // Vanish with the kernel in flight.
    drop(stream);

    wait_for(&handle, |s| s.cancelled >= 1);

    // The server is still healthy for other clients.
    let resp = request(addr, r#"{"op":"ping"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));

    let stats = handle.shutdown_and_drain();
    assert!(stats.cancelled >= 1);
}

/// Replays an update batch client-side (the reference for generation
/// checking below).
fn apply_local(g: &nsky_graph::Graph, lines: &[&str]) -> nsky_graph::Graph {
    let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let deltas = nsky_graph::io::read_edge_deltas(text.as_bytes()).expect("test batch parses");
    let mut view = nsky_graph::DeltaGraph::from_graph(g.clone());
    for d in deltas {
        view.apply(d);
    }
    view.materialize()
}

fn deltas_json(lines: &[&str]) -> String {
    let quoted: Vec<String> = lines.iter().map(|l| format!("\"{l}\"")).collect();
    format!("[{}]", quoted.join(","))
}

/// Updates interleaved with concurrent skyline reads: every response is
/// stamped with a generation, and its payload must be exactly correct
/// for *that* generation's graph — no torn reads, ever. The reference
/// graphs are replayed client-side from the same batches.
#[test]
fn updates_interleave_with_queries_without_torn_reads() {
    let handle = start_karate(test_config());
    let addr = handle.addr();
    let batches: Vec<Vec<&str>> = vec![
        vec!["+ 0 9", "- 0 1"],
        vec!["- 33 32", "+ 4 33"],
        vec!["+ 0 1", "- 4 33"],
        vec!["- 0 9", "+ 33 32"],
    ];
    // generation g == karate + the first g batches, by construction
    // (updates are serialized; each bumps the generation by one).
    let mut graphs = vec![nsky_datasets::karate()];
    for b in &batches {
        let next = apply_local(graphs.last().unwrap(), b);
        graphs.push(next);
    }
    let skylines: Vec<Vec<u32>> = graphs
        .iter()
        .map(|g| filter_refine_sky(g, &RefineConfig::default()).skyline)
        .collect();

    let reader = {
        let skylines = skylines.clone();
        std::thread::spawn(move || {
            for _ in 0..40 {
                let resp = request(addr, r#"{"op":"skyline"}"#);
                assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
                assert_eq!(resp.get("partial").and_then(Value::as_bool), Some(false));
                let generation = resp
                    .get("generation")
                    .and_then(Value::as_u64)
                    .expect("stamped generation") as usize;
                assert!(generation < skylines.len(), "unknown generation");
                assert_eq!(
                    skyline_ids(&resp),
                    skylines[generation],
                    "torn read: response does not match its own generation {generation}"
                );
            }
        })
    };
    for (i, b) in batches.iter().enumerate() {
        let resp = request(
            addr,
            &format!("{{\"op\":\"update\",\"deltas\":{}}}", deltas_json(b)),
        );
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "{resp}"
        );
        assert_eq!(resp.get("partial").and_then(Value::as_bool), Some(false));
        assert_eq!(
            resp.get("generation").and_then(Value::as_u64),
            Some((i + 1) as u64)
        );
        // The update's own payload is the new generation's exact skyline.
        assert_eq!(skyline_ids(&resp), skylines[i + 1], "update {i}");
        std::thread::sleep(Duration::from_millis(5));
    }
    reader.join().expect("reader thread must not panic");

    // After the last update, reads land on the final generation.
    let resp = request(addr, r#"{"op":"skyline"}"#);
    assert_eq!(
        resp.get("generation").and_then(Value::as_u64),
        Some(batches.len() as u64)
    );
    assert_eq!(skyline_ids(&resp), *skylines.last().unwrap());

    let stats = handle.shutdown_and_drain();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
}

/// Byzantine update payloads: every malformed shape gets a typed
/// `bad_request` (not a teardown panic, not a partial mutation) and the
/// graph generation never moves — queries keep answering for
/// generation 0 with the original skyline.
#[test]
fn malformed_update_deltas_are_rejected_without_poisoning_the_graph() {
    let handle = start_karate(test_config());
    let addr = handle.addr();
    let full = filter_refine_sky(&nsky_datasets::karate(), &RefineConfig::default());
    for bad in [
        r#"{"op":"update"}"#,                            // missing deltas
        r#"{"op":"update","deltas":"not an array"}"#,    // wrong type
        r#"{"op":"update","deltas":[42]}"#,              // non-string element
        r#"{"op":"update","deltas":["* 1 2"]}"#,         // unknown op token
        r#"{"op":"update","deltas":["+ 1"]}"#,           // missing endpoint
        r#"{"op":"update","deltas":["+ 1 2 3"]}"#,       // trailing junk
        r#"{"op":"update","deltas":["+ 3 3"]}"#,         // self-loop
        r#"{"op":"update","deltas":["+ 0 99"]}"#,        // out of range
        r#"{"op":"update","deltas":["+ 0 1","- 5 5"]}"#, // poison mid-batch
    ] {
        let resp = request(addr, bad);
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(false),
            "{bad} must be rejected: {resp}"
        );
        assert_eq!(
            resp.get("error").and_then(Value::as_str),
            Some("bad_request"),
            "{bad}: {resp}"
        );
    }
    // Zero mutation: still generation 0, still the original skyline.
    let resp = request(addr, r#"{"op":"skyline"}"#);
    assert_eq!(resp.get("generation").and_then(Value::as_u64), Some(0));
    assert_eq!(skyline_ids(&resp), full.skyline);
    // And the update path still works after the abuse.
    let resp = request(addr, r#"{"op":"update","deltas":["- 0 1"]}"#);
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "{resp}"
    );
    assert_eq!(resp.get("generation").and_then(Value::as_u64), Some(1));
    let stats = handle.shutdown_and_drain();
    assert!(stats.protocol_errors >= 9, "{stats:?}");
}

/// A deadline-tripped update commits an exact prefix: the response says
/// how far it got (`cursor`/`total`), its skyline is exactly the
/// committed-prefix graph's, and the published generation serves
/// subsequent reads with that same graph.
#[test]
fn tripped_update_publishes_an_exact_prefix_epoch() {
    let handle = start_karate(test_config());
    let addr = handle.addr();
    let lines: Vec<String> = (0..16).map(|i| format!("- {} {}", i % 8, 9 + i)).collect();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let resp = request(
        addr,
        &format!(
            "{{\"op\":\"update\",\"deltas\":{},\"trip_after\":4,\"check_interval\":1}}",
            deltas_json(&refs)
        ),
    );
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "{resp}"
    );
    assert_eq!(resp.get("partial").and_then(Value::as_bool), Some(true));
    let cursor = resp
        .get("result")
        .and_then(|r| r.get("cursor"))
        .and_then(Value::as_u64)
        .expect("cursor") as usize;
    assert!(cursor < refs.len(), "{resp}");
    let prefix_graph = apply_local(&nsky_datasets::karate(), &refs[..cursor]);
    let expect = filter_refine_sky(&prefix_graph, &RefineConfig::default()).skyline;
    assert_eq!(skyline_ids(&resp), expect, "partial not exact for prefix");
    // The prefix epoch is what readers now see.
    let resp = request(addr, r#"{"op":"skyline"}"#);
    assert_eq!(resp.get("generation").and_then(Value::as_u64), Some(1));
    assert_eq!(skyline_ids(&resp), expect);
    let stats = handle.shutdown_and_drain();
    assert_eq!(stats.partial, 1, "{stats:?}");
}

#[test]
fn shutdown_frame_drains_inflight_and_reaps_every_thread() {
    let handle = start_karate(test_config());
    let addr = handle.addr();

    // An in-flight request completes before the drain finishes.
    let resp = request(addr, r#"{"op":"skyline"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));

    let resp = request(addr, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(resp.get("draining").and_then(Value::as_bool), Some(true));

    // `join` returns only after every server thread exits: the
    // leak check is that this returns at all.
    let started = Instant::now();
    let stats = handle.join();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain exceeded its deadline"
    );
    assert!(stats.completed >= 1);
}

/// Poisons each shared mutex in turn (via the test-only `inject_poison`
/// op) and asserts the server shrugs: `Shared::lock` recovers through
/// `into_inner`, so reads, updates and the drain all still work after
/// every lock has been poisoned once.
#[test]
fn poisoned_locks_recover_via_shared_lock() {
    let handle = start_karate(ServerConfig {
        fault_injection: true,
        ..test_config()
    });
    let addr = handle.addr();
    let full = filter_refine_sky(&nsky_datasets::karate(), &RefineConfig::default());

    for target in ["epoch", "queue", "monitor", "updater"] {
        let resp = request(
            addr,
            &format!(r#"{{"op":"inject_poison","target":"{target}"}}"#),
        );
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "poisoning {target}: {resp}"
        );
        // The very next read takes the poisoned locks and must recover.
        let resp = request(addr, r#"{"op":"skyline"}"#);
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "read after poisoning {target}: {resp}"
        );
        assert_eq!(skyline_ids(&resp), full.skyline, "after {target}");
    }

    // The serialized update path survives its own poisoned mutex too.
    let resp = request(addr, r#"{"op":"update","deltas":["- 0 1"]}"#);
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "{resp}"
    );
    assert_eq!(resp.get("generation").and_then(Value::as_u64), Some(1));

    // An unknown target is refused; the connection logic is unharmed.
    let resp = request(addr, r#"{"op":"inject_poison","target":"nonsense"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));

    // Drain still joins every thread with poison in the system.
    let stats = handle.shutdown_and_drain();
    assert!(stats.completed >= 5, "{stats:?}");
}

/// With `fault_injection` off (the default), `inject_poison` is just an
/// unknown op: rejected like any other, with zero effect on the locks.
#[test]
fn inject_poison_requires_the_fault_injection_flag() {
    let handle = start_karate(test_config());
    let addr = handle.addr();
    let resp = request(addr, r#"{"op":"inject_poison","target":"queue"}"#);
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(false),
        "{resp}"
    );
    let resp = request(addr, r#"{"op":"skyline"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    handle.shutdown_and_drain();
}
