//! Cross-algorithm consistency: every skyline implementation in the
//! workspace must agree with the quadratic oracle on arbitrary graphs.
//!
//! The randomized cases run on the library's own deterministic SplitMix64
//! stream so the suite is hermetic (no registry dependencies; DESIGN.md
//! §3). The original proptest shrinking suite is kept behind the opt-in
//! `--cfg nsky_proptest` (add `proptest` to dev-dependencies to use it;
//! DESIGN.md §8).

use nsky_graph::generators::{
    affiliation_model, barabasi_albert, chung_lu_power_law, copying_model, erdos_renyi,
    leafy_preferential, planted_partition, power_law_configuration,
};
use nsky_graph::prng::SplitMix64;
use nsky_graph::{Graph, VertexId};
use nsky_setjoin::lc_join_skyline;
use nsky_skyline::oracle::naive_skyline;
use nsky_skyline::{
    base_sky, base_sky_early_exit, cset_sky, filter_refine_sky, filter_refine_sky_par, two_hop_sky,
    RefineConfig,
};

fn assert_all_agree(g: &Graph, label: &str) {
    let truth = naive_skyline(g).skyline;
    let cfg = RefineConfig::default();
    assert_eq!(base_sky(g).skyline, truth, "{label}: base_sky");
    assert_eq!(
        base_sky_early_exit(g).skyline,
        truth,
        "{label}: base_sky_early_exit"
    );
    assert_eq!(
        filter_refine_sky(g, &cfg).skyline,
        truth,
        "{label}: filter_refine_sky"
    );
    assert_eq!(
        filter_refine_sky(g, &RefineConfig::paper_faithful()).skyline,
        truth,
        "{label}: filter_refine_sky (paper faithful)"
    );
    assert_eq!(
        filter_refine_sky_par(g, &cfg, 3).skyline,
        truth,
        "{label}: filter_refine_sky_par"
    );
    assert_eq!(two_hop_sky(g).skyline, truth, "{label}: two_hop_sky");
    assert_eq!(cset_sky(g).skyline, truth, "{label}: cset_sky");
    assert_eq!(lc_join_skyline(g).skyline, truth, "{label}: lc_join");
}

#[test]
fn all_generators_all_algorithms() {
    for seed in 0..3 {
        assert_all_agree(&erdos_renyi(70, 0.08, seed), &format!("er {seed}"));
        assert_all_agree(
            &chung_lu_power_law(120, 2.7, 5.0, seed),
            &format!("chung-lu {seed}"),
        );
        assert_all_agree(
            &leafy_preferential(150, 0.9, 1.2, 6, seed),
            &format!("leafy {seed}"),
        );
        assert_all_agree(
            &affiliation_model(120, 3, 6, 0.6, seed),
            &format!("affiliation {seed}"),
        );
        assert_all_agree(
            &copying_model(120, 3, 0.8, seed),
            &format!("copying {seed}"),
        );
        assert_all_agree(
            &power_law_configuration(140, 2.8, 1, seed),
            &format!("config-model {seed}"),
        );
        assert_all_agree(
            &planted_partition(80, 4, 0.4, 0.03, seed),
            &format!("planted {seed}"),
        );
    }
    assert_all_agree(&barabasi_albert(150, 2, 1), "ba");
}

#[test]
fn datasets_and_special_graphs() {
    assert_all_agree(&nsky_datasets::karate(), "karate");
    assert_all_agree(&nsky_datasets::bombing(), "bombing");
    use nsky_graph::generators::special::*;
    assert_all_agree(&clique(10), "clique");
    assert_all_agree(&path(10), "path");
    assert_all_agree(&cycle(10), "cycle");
    assert_all_agree(&star(10), "star");
    assert_all_agree(&complete_binary_tree(4), "tree");
    assert_all_agree(&grid(4, 5), "grid");
}

/// Arbitrary edge lists (deterministic SplitMix64 stand-in for the
/// proptest strategy): all algorithms equal the oracle on 64 cases.
#[test]
fn arbitrary_graphs_agree() {
    let mut rng = SplitMix64::new(0xC05_157E);
    for case in 0..64 {
        let n = 1 + rng.next_index(39);
        let m = rng.next_index(120);
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let g = Graph::from_edges(n, edges);
        assert_all_agree(&g, &format!("splitmix case {case}"));
    }
}

/// Vertex relabeling changes IDs (and thus twin tie-breaks) but the
/// skyline *size* is label-independent.
#[test]
fn skyline_size_is_label_invariant() {
    for seed in 0..50 {
        for rot in 1..7 {
            let g = erdos_renyi(40, 0.12, seed);
            let n = g.num_vertices();
            let perm: Vec<VertexId> = (0..n).map(|u| ((u + rot) % n) as VertexId).collect();
            let h = nsky_graph::ops::relabel(&g, &perm);
            let a = filter_refine_sky(&g, &RefineConfig::default());
            let b = filter_refine_sky(&h, &RefineConfig::default());
            assert_eq!(a.len(), b.len(), "seed {seed} rot {rot}");
        }
    }
}

/// Opt-in proptest shrinking suite (`RUSTFLAGS="--cfg nsky_proptest"`
/// plus a manually added `proptest` dev-dependency; DESIGN.md §8).
#[cfg(nsky_proptest)]
mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn arbitrary_graphs_agree_proptest(
            n in 1usize..40,
            edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
        ) {
            let edges: Vec<(VertexId, VertexId)> = edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let g = Graph::from_edges(n, edges);
            assert_all_agree(&g, "proptest");
        }

        #[test]
        fn skyline_size_is_label_invariant_proptest(
            seed in 0u64..50,
            rot in 1usize..7,
        ) {
            let g = erdos_renyi(40, 0.12, seed);
            let n = g.num_vertices();
            let perm: Vec<VertexId> = (0..n)
                .map(|u| ((u + rot) % n) as VertexId)
                .collect();
            let h = nsky_graph::ops::relabel(&g, &perm);
            let a = filter_refine_sky(&g, &RefineConfig::default());
            let b = filter_refine_sky(&h, &RefineConfig::default());
            prop_assert_eq!(a.len(), b.len());
        }
    }
}
