//! The composed fault matrix: every kernel, through its single
//! [`ExecutionContext`] entry point, under every single fault and every
//! pairwise fault combination.
//!
//! The faults:
//!
//! * **Deadline** — a [`TripClock`] expiring at a mid-run poll;
//! * **Memory** — a 64-byte memory cap (trips at the first charge);
//! * **Cancel** — a pre-raised [`CancelToken`] (deterministic stand-in
//!   for a cross-thread cancel; the racy variant lives in
//!   `budget_faults.rs`);
//! * **Checkpoint** — a short checkpoint period with a
//!   [`FileCheckpointer`] sink armed (and, separately, a
//!   kill-at-every-poll-point sweep per kernel);
//! * **Torn / bit-flipped / wrong-graph / wrong-kernel resume** —
//!   unusable snapshots offered back to the context. Torn and flipped
//!   images must be rejected by the loader with a typed error; valid
//!   images for the wrong graph or kernel must degrade to a clean fresh
//!   run with [`ResumableRun::recovery`] set.
//!
//! Every cell asserts the same contract: the completion matches the
//! injected fault set, a trip always leaves a resumable snapshot whose
//! resumption converges to the uninterrupted answer, partial outcomes
//! are anytime-sound, no-fault runs are byte-identical to the
//! uninstrumented twins, recorder phase spans stay balanced, and (for
//! sequential kernels) a repeated run reproduces the outcome and every
//! counter exactly. All randomness is SplitMix64-seeded from the kernel
//! name, so the matrix is deterministic run to run.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use nsky_centrality::greedy::{greedy_group, greedy_group_with, GreedyOptions};
use nsky_centrality::measure::Harmonic;
use nsky_centrality::neisky::{nei_sky_group, nei_sky_group_with};
use nsky_clique::{
    is_clique, max_clique_bnb, max_clique_bnb_with, mc_brb, mc_brb_with, nei_sky_mc,
    nei_sky_mc_with, top_k_cliques, top_k_cliques_with, TopkMode,
};
use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};
use nsky_skyline::budget::{Completion, ExecutionBudget, TripClock};
use nsky_skyline::exec::ExecutionContext;
use nsky_skyline::obs::CountingRecorder;
use nsky_skyline::snapshot::{
    Checkpointer, FileCheckpointer, RecoveryError, ResumableRun, Snapshot,
};
use nsky_skyline::{
    base_sky, base_sky_with, filter_refine_sky, filter_refine_sky_par_with, filter_refine_sky_with,
    RefineConfig,
};

// ---------------------------------------------------------------------
// Deterministic randomness and fingerprints (SplitMix64).
// ---------------------------------------------------------------------

/// One SplitMix64 step: advances `state` and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one value into a fingerprint with the SplitMix64 scrambler.
fn mix(h: u64, v: u64) -> u64 {
    let mut s = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// Fingerprint of a vertex list (order-sensitive, length-prefixed).
fn fp_vertices(h: u64, vs: &[u32]) -> u64 {
    vs.iter()
        .fold(mix(h, vs.len() as u64), |h, &v| mix(h, u64::from(v)))
}

/// A deterministic per-cell RNG seed derived from the kernel name.
fn cell_seed(name: &str, idx: usize) -> u64 {
    let h = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| mix(h, u64::from(b)));
    mix(h, idx as u64)
}

// ---------------------------------------------------------------------
// Harness plumbing.
// ---------------------------------------------------------------------

/// A budget with a deterministic clock tripping on poll `k`, polling on
/// every tick, plus the clock handle for poll counting.
fn trip_budget(k: u64) -> (ExecutionBudget, Arc<TripClock>) {
    let clock = Arc::new(TripClock::at_poll(k));
    let budget = ExecutionBudget::unlimited()
        .deadline(Arc::clone(&clock))
        .check_interval(1);
    (budget, clock)
}

/// A scratch path unique to this test process and `label`.
fn scratch_path(label: &str) -> std::path::PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nsky-fault-matrix-{}-{label}-{seq}.ck",
        std::process::id()
    ))
}

/// Runs a kernel once through a context composed from the given parts.
fn run_ctx<'a, T>(
    run: &dyn Fn(&mut ExecutionContext<'_>) -> ResumableRun<T>,
    budget: Option<&'a ExecutionBudget>,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
    rec: Option<&'a CountingRecorder>,
) -> ResumableRun<T> {
    let mut ctx = ExecutionContext::new();
    if let Some(b) = budget {
        ctx = ctx.budget(b);
    }
    if let Some(r) = rec {
        ctx = ctx.recorder(r);
    }
    let mut ctx = ctx.resume(resume).checkpoint(sink);
    run(&mut ctx)
}

/// A genuine mid-run snapshot of `run`, as wire bytes: calibrates the
/// poll count, then trips half-way (falling back to the first poll for
/// racy parallel kernels).
fn tripped_snapshot<T>(run: &dyn Fn(&mut ExecutionContext<'_>) -> ResumableRun<T>) -> Vec<u8> {
    let (budget, clock) = trip_budget(u64::MAX);
    let clean = run_ctx(run, Some(&budget), None, None, None);
    assert!(clean.snapshot.is_none(), "calibration run must complete");
    let total = clock.polls();
    for k in [(total / 2).max(1), 1] {
        let (budget, _clock) = trip_budget(k);
        let tripped = run_ctx(run, Some(&budget), None, None, None);
        if let Some(snap) = tripped.snapshot {
            return snap.to_bytes();
        }
    }
    panic!("kernel completed under every trip point; cannot snapshot it");
}

// ---------------------------------------------------------------------
// The fault axis.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fault {
    Deadline,
    Memory,
    Cancel,
    Checkpoint,
    TornResume,
    BitFlipResume,
    WrongGraphResume,
    WrongKernelResume,
}

const ALL_FAULTS: &[Fault] = &[
    Fault::Deadline,
    Fault::Memory,
    Fault::Cancel,
    Fault::Checkpoint,
    Fault::TornResume,
    Fault::BitFlipResume,
    Fault::WrongGraphResume,
    Fault::WrongKernelResume,
];

impl Fault {
    /// All resume corruptions share one axis: a context takes at most
    /// one resume snapshot, so they never pair with each other.
    fn is_resume(self) -> bool {
        matches!(
            self,
            Fault::TornResume
                | Fault::BitFlipResume
                | Fault::WrongGraphResume
                | Fault::WrongKernelResume
        )
    }

    /// The completion this fault forces, when it trips the run.
    fn trips(self) -> Option<Completion> {
        match self {
            Fault::Deadline => Some(Completion::DeadlineExceeded),
            Fault::Memory => Some(Completion::MemoryCapped),
            Fault::Cancel => Some(Completion::Cancelled),
            _ => None,
        }
    }
}

/// Every single fault plus every pairwise combination (resume faults
/// never pair with each other — one resume slot per context).
fn cells() -> Vec<Vec<Fault>> {
    let mut out: Vec<Vec<Fault>> = ALL_FAULTS.iter().map(|&f| vec![f]).collect();
    for (i, &a) in ALL_FAULTS.iter().enumerate() {
        for &b in &ALL_FAULTS[i + 1..] {
            if a.is_resume() && b.is_resume() {
                continue;
            }
            out.push(vec![a, b]);
        }
    }
    out
}

// ---------------------------------------------------------------------
// The generic matrix runner.
// ---------------------------------------------------------------------

/// One kernel's hookup into the matrix. `check` owns the semantic
/// assertions: on [`Completion::Complete`] the outcome must equal the
/// uninterrupted reference field by field; on any trip it must be
/// anytime-sound (subset / prefix / valid-so-far, per kernel).
struct MatrixCase<'a, T> {
    name: &'static str,
    /// Parallel kernels race the trip point, so repeated-run
    /// determinism and exact counter equality are not asserted.
    parallel: bool,
    run: &'a dyn Fn(&mut ExecutionContext<'_>) -> ResumableRun<T>,
    /// The same kernel on a different graph (wrong-graph snapshots).
    wrong_graph: &'a dyn Fn(&mut ExecutionContext<'_>) -> ResumableRun<T>,
    /// A *different* kernel on the same graph (wrong-kernel snapshots).
    foreign: &'a dyn Fn() -> Vec<u8>,
    completion: &'a dyn Fn(&T) -> Completion,
    check: &'a dyn Fn(&T, Completion, &str),
    fingerprint: &'a dyn Fn(&T) -> u64,
}

fn run_matrix<T>(case: MatrixCase<'_, T>) {
    // Calibrate, and pin the clean answer every cell compares against.
    let (budget, clock) = trip_budget(u64::MAX);
    let clean = run_ctx(case.run, Some(&budget), None, None, None);
    assert!(
        clean.snapshot.is_none() && clean.recovery.is_none(),
        "{}: clean run must complete",
        case.name
    );
    assert_eq!((case.completion)(&clean.outcome), Completion::Complete);
    (case.check)(&clean.outcome, Completion::Complete, case.name);
    let total = clock.polls();
    assert!(total > 4, "{}: too few polls to fault ({total})", case.name);
    let mid = (total / 2).max(1);
    let clean_fp = (case.fingerprint)(&clean.outcome);

    // No-fault recorder coherence: two fully-armed-but-untripped
    // recorded runs agree with the clean answer and with each other.
    let (rec1, rec2) = (CountingRecorder::new(), CountingRecorder::new());
    let r1 = run_ctx(case.run, None, None, None, Some(&rec1));
    let r2 = run_ctx(case.run, None, None, None, Some(&rec2));
    for r in [&r1, &r2] {
        assert_eq!(
            (case.fingerprint)(&r.outcome),
            clean_fp,
            "{}: recorded run diverged from the clean answer",
            case.name
        );
    }
    if !case.parallel {
        assert_eq!(
            rec1.counters(),
            rec2.counters(),
            "{}: counters are not deterministic",
            case.name
        );
    }

    // Snapshot material for the resume-fault column.
    let genuine = tripped_snapshot(case.run);
    let wrong_graph = tripped_snapshot(case.wrong_graph);
    let foreign = (case.foreign)();

    // The matrix proper.
    for (idx, faults) in cells().iter().enumerate() {
        run_cell(
            &case,
            faults,
            idx,
            mid,
            clean_fp,
            &genuine,
            &wrong_graph,
            &foreign,
        );
    }

    // Kill-at-every-poll-point checkpoint sweep: trip at each poll,
    // round-trip the final snapshot through its wire encoding, resume
    // under an inert context, and require exact convergence.
    for k in 1..total {
        let label = format!("{} kill k={k}/{total}", case.name);
        let (budget, _clock) = trip_budget(k);
        let tripped = run_ctx(case.run, Some(&budget), None, None, None);
        let Some(snap) = tripped.snapshot else {
            // Parallel workers may legitimately finish before observing
            // the trip; a sequential kernel may not.
            assert!(
                case.parallel && (case.completion)(&tripped.outcome) == Completion::Complete,
                "{label}: trip produced no snapshot"
            );
            assert_eq!((case.fingerprint)(&tripped.outcome), clean_fp, "{label}");
            continue;
        };
        (case.check)(
            &tripped.outcome,
            (case.completion)(&tripped.outcome),
            &label,
        );
        let snap = Snapshot::from_bytes(&snap.to_bytes())
            .unwrap_or_else(|e| panic!("{label}: wire round-trip failed: {e}"));
        let resumed = run_ctx(case.run, None, Some(&snap), None, None);
        assert!(
            resumed.snapshot.is_none() && resumed.recovery.is_none(),
            "{label}: resume did not complete cleanly"
        );
        (case.check)(&resumed.outcome, Completion::Complete, &label);
        assert_eq!(
            (case.fingerprint)(&resumed.outcome),
            clean_fp,
            "{label}: resumed answer diverged"
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell<T>(
    case: &MatrixCase<'_, T>,
    faults: &[Fault],
    idx: usize,
    mid: u64,
    clean_fp: u64,
    genuine: &[u8],
    wrong_graph: &[u8],
    foreign: &[u8],
) {
    let label = format!("{} {faults:?}", case.name);
    let mut rng = cell_seed(case.name, idx);
    let has = |f: Fault| faults.contains(&f);

    // Resume slot. Torn and bit-flipped images never survive the
    // loader: a seeded sample of corruptions must each be rejected with
    // a typed error, after which the caller can only start fresh
    // (resume stays `None` — that *is* the graceful degradation).
    let mut resume_owned: Option<Snapshot> = None;
    if has(Fault::TornResume) {
        for _ in 0..8 {
            let cut = (splitmix64(&mut rng) as usize) % genuine.len();
            let err = Snapshot::from_bytes(&genuine[..cut])
                .err()
                .unwrap_or_else(|| panic!("{label}: torn tail at {cut} accepted"));
            assert!(
                matches!(
                    err,
                    RecoveryError::Truncated
                        | RecoveryError::ChecksumMismatch
                        | RecoveryError::BadMagic
                ),
                "{label}: torn tail at {cut}: unexpected {err:?}"
            );
        }
    }
    if has(Fault::BitFlipResume) {
        for _ in 0..8 {
            let byte = (splitmix64(&mut rng) as usize) % genuine.len();
            let bit = splitmix64(&mut rng) % 8;
            let mut corrupt = genuine.to_vec();
            corrupt[byte] ^= 1 << bit;
            assert!(
                Snapshot::from_bytes(&corrupt).is_err(),
                "{label}: bit flip at byte {byte} bit {bit} accepted"
            );
        }
    }
    if has(Fault::WrongGraphResume) {
        resume_owned = Some(Snapshot::from_bytes(wrong_graph).expect("wrong-graph wire image"));
    }
    if has(Fault::WrongKernelResume) {
        resume_owned = Some(Snapshot::from_bytes(foreign).expect("foreign wire image"));
    }

    let make_budget = || {
        let mut b = ExecutionBudget::unlimited().check_interval(1);
        if has(Fault::Deadline) {
            b = b.deadline(TripClock::at_poll(mid));
        }
        if has(Fault::Memory) {
            b = b.memory_cap(64);
        }
        if has(Fault::Cancel) {
            b.cancel_token().cancel();
        }
        if has(Fault::Checkpoint) {
            b.set_checkpoint_period(3);
        }
        b
    };
    let ck_path = has(Fault::Checkpoint).then(|| scratch_path(&format!("{}-{idx}", case.name)));

    let exec = |rec: &CountingRecorder| {
        let budget = make_budget();
        let mut sink = ck_path.as_ref().map(FileCheckpointer::new);
        run_ctx(
            case.run,
            Some(&budget),
            resume_owned.as_ref(),
            sink.as_mut().map(|s| s as &mut dyn Checkpointer),
            Some(rec),
        )
    };

    let rec1 = CountingRecorder::new();
    let run1 = exec(&rec1);
    let comp = (case.completion)(&run1.outcome);

    // Completion must match the injected fault set exactly: the union
    // of the tripping faults' completions, or Complete when none trips.
    let allowed: Vec<Completion> = faults.iter().filter_map(|f| f.trips()).collect();
    if allowed.is_empty() {
        assert_eq!(comp, Completion::Complete, "{label}: spurious trip");
    } else if !(case.parallel && comp == Completion::Complete) {
        assert!(
            allowed.contains(&comp),
            "{label}: unexpected completion {comp:?} (allowed {allowed:?})"
        );
    }

    // A trip always leaves a snapshot; a completed run never does.
    assert_eq!(
        run1.snapshot.is_none(),
        comp == Completion::Complete,
        "{label}: snapshot presence contradicts completion {comp:?}"
    );

    // Unusable-but-wellformed snapshots surface a typed recovery error;
    // everything else must not.
    if has(Fault::WrongGraphResume) {
        assert!(
            matches!(run1.recovery, Some(RecoveryError::GraphMismatch)),
            "{label}: expected GraphMismatch, got {:?}",
            run1.recovery
        );
    } else if has(Fault::WrongKernelResume) {
        assert!(
            matches!(run1.recovery, Some(RecoveryError::KernelMismatch { .. })),
            "{label}: expected KernelMismatch, got {:?}",
            run1.recovery
        );
    } else {
        assert!(
            run1.recovery.is_none(),
            "{label}: spurious recovery {:?}",
            run1.recovery
        );
    }

    // Anytime soundness (or exact equality when the cell completed).
    (case.check)(&run1.outcome, comp, &label);
    if comp == Completion::Complete {
        assert_eq!(
            (case.fingerprint)(&run1.outcome),
            clean_fp,
            "{label}: degraded run diverged from the clean answer"
        );
    }

    // Recorder phase spans stay balanced under every fault.
    for p in rec1.phases() {
        assert!(
            p.end_nanos >= p.start_nanos,
            "{label}: span `{}` ends before it starts",
            p.name
        );
    }

    // Determinism: an identical second run reproduces the outcome and
    // every counter (sequential kernels only — parallel trips race).
    if !case.parallel {
        let rec2 = CountingRecorder::new();
        let run2 = exec(&rec2);
        assert_eq!(
            (case.completion)(&run2.outcome),
            comp,
            "{label}: completion is not deterministic"
        );
        assert_eq!(
            (case.fingerprint)(&run2.outcome),
            (case.fingerprint)(&run1.outcome),
            "{label}: outcome is not deterministic"
        );
        assert_eq!(
            rec1.counters(),
            rec2.counters(),
            "{label}: counters are not deterministic"
        );
    }

    // Every trip's snapshot must resume, through the wire encoding, to
    // the exact uninterrupted answer under an inert context.
    if let Some(snap) = run1.snapshot {
        let snap = Snapshot::from_bytes(&snap.to_bytes())
            .unwrap_or_else(|e| panic!("{label}: wire round-trip failed: {e}"));
        let resumed = run_ctx(case.run, None, Some(&snap), None, None);
        assert!(
            resumed.snapshot.is_none() && resumed.recovery.is_none(),
            "{label}: resume did not complete cleanly"
        );
        (case.check)(&resumed.outcome, Completion::Complete, &label);
        assert_eq!(
            (case.fingerprint)(&resumed.outcome),
            clean_fp,
            "{label}: resumed answer diverged"
        );
    }

    // Whatever checkpoint the sink managed to land on disk must itself
    // be a usable resume point (a trip before the first due checkpoint
    // legitimately leaves nothing).
    if let Some(path) = &ck_path {
        if let Ok(snap) = Snapshot::load(path) {
            let resumed = run_ctx(case.run, None, Some(&snap), None, None);
            assert!(
                resumed.recovery.is_none(),
                "{label}: disk checkpoint rejected: {:?}",
                resumed.recovery
            );
            assert_eq!(
                (case.fingerprint)(&resumed.outcome),
                clean_fp,
                "{label}: disk resume diverged"
            );
        }
        let _ = std::fs::remove_file(path);
    }
}

// ---------------------------------------------------------------------
// Per-kernel hookups.
// ---------------------------------------------------------------------

#[test]
fn matrix_base_sky() {
    let g = chung_lu_power_law(72, 2.8, 5.0, 21);
    let g2 = chung_lu_power_law(72, 2.8, 5.0, 22);
    let full = base_sky(&g);
    run_matrix(MatrixCase {
        name: "base-sky",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| base_sky_with(&g2, ctx),
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| mc_brb_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.skyline, full.skyline, "{label}");
            } else {
                for v in &o.skyline {
                    assert!(full.skyline.binary_search(v).is_ok(), "{label}: unsound");
                }
            }
        },
        fingerprint: &|o| fp_vertices(1, &o.skyline),
    });
}

#[test]
fn matrix_filter_refine() {
    let g = chung_lu_power_law(72, 2.8, 5.0, 23);
    let g2 = chung_lu_power_law(72, 2.8, 5.0, 24);
    let cfg = RefineConfig::default();
    let full = filter_refine_sky(&g, &cfg);
    run_matrix(MatrixCase {
        name: "filter-refine",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| filter_refine_sky_with(&g, &cfg, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| filter_refine_sky_with(&g2, &cfg, ctx),
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.skyline, full.skyline, "{label}");
            } else {
                for v in &o.skyline {
                    assert!(full.skyline.binary_search(v).is_ok(), "{label}: unsound");
                }
            }
        },
        fingerprint: &|o| fp_vertices(2, &o.skyline),
    });
}

#[test]
fn matrix_parallel_refine() {
    let g = chung_lu_power_law(72, 2.8, 5.0, 25);
    let g2 = chung_lu_power_law(72, 2.8, 5.0, 26);
    let cfg = RefineConfig::default();
    let full = filter_refine_sky(&g, &cfg);
    run_matrix(MatrixCase {
        name: "parallel-refine",
        parallel: true,
        run: &|ctx: &mut ExecutionContext<'_>| filter_refine_sky_par_with(&g, &cfg, 2, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| {
            filter_refine_sky_par_with(&g2, &cfg, 2, ctx)
        },
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.skyline, full.skyline, "{label}");
            } else {
                for v in &o.skyline {
                    assert!(full.skyline.binary_search(v).is_ok(), "{label}: unsound");
                }
            }
        },
        fingerprint: &|o| fp_vertices(3, &o.skyline),
    });
}

#[test]
fn matrix_clique_bnb() {
    let g = erdos_renyi(34, 0.25, 27);
    let g2 = erdos_renyi(34, 0.25, 28);
    let (full, _) = max_clique_bnb(&g);
    run_matrix(MatrixCase {
        name: "clique-bnb",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| max_clique_bnb_with(&g, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| max_clique_bnb_with(&g2, ctx),
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.clique, full, "{label}");
            } else {
                assert!(
                    o.clique.is_empty() || is_clique(&g, &o.clique),
                    "{label}: partial best-so-far is not a clique"
                );
            }
        },
        fingerprint: &|o| fp_vertices(4, &o.clique),
    });
}

#[test]
fn matrix_mc_brb() {
    let g = chung_lu_power_law(80, 2.6, 6.0, 29);
    let g2 = chung_lu_power_law(80, 2.6, 6.0, 30);
    let (full, _) = mc_brb(&g);
    run_matrix(MatrixCase {
        name: "mc-brb",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| mc_brb_with(&g, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| mc_brb_with(&g2, ctx),
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.clique, full, "{label}");
            } else {
                assert!(
                    o.clique.is_empty() || is_clique(&g, &o.clique),
                    "{label}: partial best-so-far is not a clique"
                );
            }
        },
        fingerprint: &|o| fp_vertices(5, &o.clique),
    });
}

#[test]
fn matrix_nei_sky_mc() {
    let g = chung_lu_power_law(80, 2.6, 6.0, 31);
    let g2 = chung_lu_power_law(80, 2.6, 6.0, 32);
    let full = nei_sky_mc(&g);
    run_matrix(MatrixCase {
        name: "nei-sky-mc",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| nei_sky_mc_with(&g, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| nei_sky_mc_with(&g2, ctx),
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.clique, full.clique, "{label}");
                assert_eq!(o.skyline_size, full.skyline_size, "{label}");
            } else {
                assert!(
                    o.clique.is_empty() || is_clique(&g, &o.clique),
                    "{label}: partial best-so-far is not a clique"
                );
            }
        },
        fingerprint: &|o| mix(fp_vertices(6, &o.clique), o.skyline_size as u64),
    });
}

#[test]
fn matrix_topk_base() {
    let g = erdos_renyi(30, 0.3, 33);
    let g2 = erdos_renyi(30, 0.3, 34);
    let full = top_k_cliques(&g, 3, TopkMode::Base);
    run_matrix(MatrixCase {
        name: "topk-base",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| top_k_cliques_with(&g, 3, TopkMode::Base, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| {
            top_k_cliques_with(&g2, 3, TopkMode::Base, ctx)
        },
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.cliques, full.cliques, "{label}");
                assert_eq!(o.seeds, full.seeds, "{label}");
            } else {
                // Completed rounds are exact: a prefix of the ranking.
                assert!(o.cliques.len() <= full.cliques.len(), "{label}");
                for (i, c) in o.cliques.iter().enumerate() {
                    assert_eq!(c, &full.cliques[i], "{label}: round {i} diverged");
                }
            }
        },
        fingerprint: &|o| {
            let h = o
                .cliques
                .iter()
                .fold(7, |h, c| fp_vertices(mix(h, 0xC11), c));
            fp_vertices(h, &o.seeds)
        },
    });
}

#[test]
fn matrix_topk_neisky() {
    let g = erdos_renyi(34, 0.25, 35);
    let g2 = erdos_renyi(34, 0.25, 36);
    let full = top_k_cliques(&g, 3, TopkMode::NeiSky);
    run_matrix(MatrixCase {
        name: "topk-neisky",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| top_k_cliques_with(&g, 3, TopkMode::NeiSky, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| {
            top_k_cliques_with(&g2, 3, TopkMode::NeiSky, ctx)
        },
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.cliques, full.cliques, "{label}");
                assert_eq!(o.seeds, full.seeds, "{label}");
            } else {
                assert!(o.cliques.len() <= full.cliques.len(), "{label}");
                for (i, c) in o.cliques.iter().enumerate() {
                    assert_eq!(c, &full.cliques[i], "{label}: round {i} diverged");
                }
            }
        },
        fingerprint: &|o| {
            let h = o
                .cliques
                .iter()
                .fold(8, |h, c| fp_vertices(mix(h, 0xC11), c));
            fp_vertices(h, &o.seeds)
        },
    });
}

#[test]
fn matrix_greedy_plain() {
    let g = erdos_renyi(36, 0.12, 37);
    let g2 = erdos_renyi(36, 0.12, 38);
    let opts = GreedyOptions::default();
    let full = greedy_group(&g, Harmonic, 3, &opts);
    run_matrix(MatrixCase {
        name: "greedy-plain",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| greedy_group_with(&g, Harmonic, 3, &opts, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| {
            greedy_group_with(&g2, Harmonic, 3, &opts, ctx)
        },
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.group, full.group, "{label}");
                assert_eq!(
                    o.score_trace, full.score_trace,
                    "{label}: float replay drifted"
                );
                assert_eq!(o.score, full.score, "{label}");
            } else {
                // The committed prefix is exactly the open-loop greedy's.
                assert!(o.group.len() <= full.group.len(), "{label}");
                assert_eq!(o.group, full.group[..o.group.len()], "{label}");
            }
        },
        fingerprint: &|o| mix(fp_vertices(9, &o.group), o.score.to_bits()),
    });
}

#[test]
fn matrix_greedy_celf() {
    let g = erdos_renyi(36, 0.12, 39);
    let g2 = erdos_renyi(36, 0.12, 40);
    let opts = GreedyOptions::optimized();
    let full = greedy_group(&g, Harmonic, 3, &opts);
    run_matrix(MatrixCase {
        name: "greedy-celf",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| greedy_group_with(&g, Harmonic, 3, &opts, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| {
            greedy_group_with(&g2, Harmonic, 3, &opts, ctx)
        },
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.group, full.group, "{label}");
                assert_eq!(
                    o.score_trace, full.score_trace,
                    "{label}: float replay drifted"
                );
                assert_eq!(o.score, full.score, "{label}");
            } else {
                assert!(o.group.len() <= full.group.len(), "{label}");
                assert_eq!(o.group, full.group[..o.group.len()], "{label}");
            }
        },
        fingerprint: &|o| mix(fp_vertices(10, &o.group), o.score.to_bits()),
    });
}

#[test]
fn matrix_nei_sky_group() {
    let g = chung_lu_power_law(56, 2.7, 5.0, 41);
    let g2 = chung_lu_power_law(56, 2.7, 5.0, 42);
    let full = nei_sky_group(&g, Harmonic, 3, true);
    run_matrix(MatrixCase {
        name: "nei-sky-group",
        parallel: false,
        run: &|ctx: &mut ExecutionContext<'_>| nei_sky_group_with(&g, Harmonic, 3, true, ctx),
        wrong_graph: &|ctx: &mut ExecutionContext<'_>| {
            nei_sky_group_with(&g2, Harmonic, 3, true, ctx)
        },
        foreign: &|| tripped_snapshot(&|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx)),
        completion: &|o| o.greedy.completion,
        check: &|o, comp, label| {
            if comp == Completion::Complete {
                assert_eq!(o.greedy.group, full.greedy.group, "{label}");
                assert_eq!(o.greedy.score, full.greedy.score, "{label}");
                assert_eq!(o.skyline_size, full.skyline_size, "{label}");
            } else {
                // Both phases share the budget; the partial group never
                // exceeds the requested size.
                assert!(o.greedy.group.len() <= 3, "{label}");
            }
        },
        fingerprint: &|o| {
            mix(
                mix(fp_vertices(11, &o.greedy.group), o.greedy.score.to_bits()),
                o.skyline_size as u64,
            )
        },
    });
}

/// The matrix shape itself is part of the contract: 8 single-fault
/// cells plus every pairwise combination outside the resume axis.
#[test]
fn matrix_covers_all_singles_and_pairs() {
    let cells = cells();
    assert_eq!(cells.iter().filter(|c| c.len() == 1).count(), 8);
    // C(8,2) = 28 pairs, minus C(4,2) = 6 resume-resume pairs.
    assert_eq!(cells.iter().filter(|c| c.len() == 2).count(), 22);
    for cell in &cells {
        assert!(cell.iter().filter(|f| f.is_resume()).count() <= 1);
    }
}

// ---------------------------------------------------------------------
// Cross-thread cancellation racing a checkpoint save.
// ---------------------------------------------------------------------

/// A checkpoint sink that raises the budget's [`CancelToken`] from
/// another thread *while* the underlying [`FileCheckpointer::save`] is
/// in flight, joining the canceller before the save returns — so the
/// cancel is guaranteed raised mid-save and observed at the very next
/// poll, deterministically.
struct CancelMidSave {
    inner: FileCheckpointer,
    token: nsky_skyline::budget::CancelToken,
    /// Saves to complete before the racing one (so the file already
    /// holds a full older snapshot when the race hits).
    saves_before_race: u32,
    raced: bool,
}

impl Checkpointer for CancelMidSave {
    fn save(&mut self, snapshot: &Snapshot) -> Result<(), RecoveryError> {
        if self.raced || self.saves_before_race > 0 {
            self.saves_before_race = self.saves_before_race.saturating_sub(1);
            return self.inner.save(snapshot);
        }
        self.raced = true;
        let token = self.token.clone();
        let canceller = std::thread::spawn(move || token.cancel());
        let result = self.inner.save(snapshot);
        canceller.join().expect("canceller panicked");
        result
    }
}

/// Cancellation arriving while `FileCheckpointer::save` is mid-write
/// must never tear the file: the atomic temp-plus-rename leaves either
/// the previous snapshot or the new one on disk, both resumable, and
/// the kernel stops with [`Completion::Cancelled`] at the next poll.
#[test]
fn cancel_mid_checkpoint_save_never_tears_the_file() {
    let g = chung_lu_power_law(72, 2.8, 5.0, 43);
    let full = base_sky(&g);
    // Race the cancel against the first save and against a later save
    // (file empty vs. file already holding an older full snapshot).
    for saves_before_race in [0, 2] {
        let path = scratch_path(&format!("cancel-mid-save-{saves_before_race}"));
        let budget = ExecutionBudget::unlimited().check_interval(1);
        budget.set_checkpoint_period(1);
        let mut sink = CancelMidSave {
            inner: FileCheckpointer::new(&path),
            token: budget.cancel_token(),
            saves_before_race,
            raced: false,
        };
        let run = {
            let mut ctx = ExecutionContext::new()
                .budget(&budget)
                .checkpoint(Some(&mut sink as &mut dyn Checkpointer));
            base_sky_with(&g, &mut ctx)
        };
        assert!(sink.raced, "checkpoint period 1 never reached a save");
        assert_eq!(
            run.outcome.completion,
            Completion::Cancelled,
            "cancel raised mid-save was not observed at the next poll"
        );
        assert!(run.snapshot.is_some(), "cancelled run left no snapshot");
        // Whatever the race left on disk, it is a complete image — the
        // old snapshot or the new one, never a torn hybrid — and
        // resuming from it converges to the uninterrupted answer.
        let on_disk = Snapshot::load(&path)
            .unwrap_or_else(|e| panic!("saves_before_race={saves_before_race}: torn file: {e}"));
        let resumed = run_ctx(
            &|ctx: &mut ExecutionContext<'_>| base_sky_with(&g, ctx),
            None,
            Some(&on_disk),
            None,
            None,
        );
        assert!(resumed.recovery.is_none() && resumed.snapshot.is_none());
        assert_eq!(resumed.outcome.skyline, full.skyline);
        let _ = std::fs::remove_file(&path);
    }
}
