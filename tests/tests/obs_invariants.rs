//! Metrics-invariant layer for the observability subsystem: every
//! counter the kernels flush through a [`Recorder`] must satisfy the
//! paper's accounting identities, the `NoopRecorder` twins must be
//! byte-identical to the uninstrumented entry points, and the JSON run
//! report must round-trip through the std-only decoder while rejecting
//! truncated or bit-flipped payloads with a typed error.
//!
//! Graphs come from a deterministic SplitMix64-driven sweep so failures
//! reproduce exactly; no test here reads a clock or the filesystem.

use nsky_centrality::greedy::{greedy_group, greedy_group_recorded, GreedyOptions};
use nsky_centrality::measure::{Closeness, Harmonic};
use nsky_centrality::neisky::{nei_sky_group, nei_sky_group_recorded};
use nsky_clique::{
    max_clique_bnb, max_clique_bnb_recorded, mc_brb, mc_brb_recorded, nei_sky_mc,
    nei_sky_mc_recorded, top_k_cliques, top_k_cliques_recorded, TopkMode,
};
use nsky_graph::generators::special::{clique, cycle, star};
use nsky_graph::generators::{chung_lu_power_law, erdos_renyi, leafy_preferential};
use nsky_graph::Graph;
use nsky_skyline::obs::{ReportError, SCHEMA_VERSION};
use nsky_skyline::snapshot::{FaultFile, FaultKind};
use nsky_skyline::{
    base_sky, base_sky_recorded, filter_refine_sky, filter_refine_sky_par,
    filter_refine_sky_par_recorded, filter_refine_sky_recorded, Completion, Counter,
    CountingRecorder, NoopRecorder, RefineConfig, RunReport, SkylineResult,
};

/// SplitMix64: the seed stream for the sweep. Chosen over the harness's
/// XorShift because it tolerates any seed (including 0) and every
/// output is a fresh, well-mixed 64-bit word.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The deterministic graph sweep: special families that exercise the
/// skyline's edge cases plus random graphs across density regimes.
fn sweep() -> Vec<(String, Graph)> {
    let mut rng = SplitMix64::new(0x0b5e_7ab5);
    let mut graphs = vec![
        ("empty".to_string(), Graph::empty(0)),
        ("edgeless".to_string(), Graph::empty(6)),
        ("clique8".to_string(), clique(8)),
        ("cycle12".to_string(), cycle(12)),
        ("star16".to_string(), star(16)),
    ];
    for round in 0..6 {
        let n = 20 + (rng.next() % 61) as usize;
        let p = 0.04 + (rng.next() % 28) as f64 / 100.0;
        graphs.push((
            format!("er{round}(n={n},p={p:.2})"),
            erdos_renyi(n, p, rng.next()),
        ));
    }
    graphs.push((
        "power_law".to_string(),
        chung_lu_power_law(300, 2.7, 6.0, rng.next()),
    ));
    graphs.push((
        "leafy".to_string(),
        leafy_preferential(250, 0.85, 1.0, 4, rng.next()),
    ));
    graphs
}

/// `SkylineResult` deliberately does not implement `PartialEq`; compare
/// every observable field so the Noop identity test cannot silently
/// narrow.
fn assert_same_skyline(label: &str, a: &SkylineResult, b: &SkylineResult) {
    assert_eq!(a.skyline, b.skyline, "{label}: skyline diverged");
    assert_eq!(
        a.dominator, b.dominator,
        "{label}: dominator array diverged"
    );
    assert_eq!(
        a.candidates, b.candidates,
        "{label}: candidate set diverged"
    );
    assert_eq!(a.stats, b.stats, "{label}: counters diverged");
    assert_eq!(a.completion, b.completion, "{label}: completion diverged");
}

/// Filter candidates bound the skyline, refine checks are bounded by
/// candidate pairs, the bloom filter's hit/reject split accounts for
/// every containment query, and the recorder's table equals the stats
/// struct counter-for-counter.
#[test]
fn skyline_counters_satisfy_the_accounting_identities() {
    for (label, g) in sweep() {
        let n = g.num_vertices() as u64;
        let rec = CountingRecorder::new();
        let out = filter_refine_sky_recorded(&g, &RefineConfig::default(), &rec);
        assert_eq!(out.completion, Completion::Complete, "{label}");
        let stats = &out.stats;

        // The filter phase may only over-approximate the skyline.
        assert!(
            stats.candidate_count >= out.skyline.len(),
            "{label}: {} candidates < {} skyline vertices",
            stats.candidate_count,
            out.skyline.len()
        );
        // Refine tests each candidate against potential dominators —
        // never more than candidates × (n − 1) ordered pairs.
        let c = stats.candidate_count as u64;
        assert!(
            stats.pair_tests <= c * n.saturating_sub(1),
            "{label}: {} pair tests exceed the candidate-pair bound",
            stats.pair_tests
        );
        // Every bloom containment query resolves to exactly one of:
        // hit, word-level reject, bit-level reject.
        assert_eq!(
            stats.bloom_queries,
            stats.bloom_hits + stats.bf_word_rejects + stats.bf_bit_rejects,
            "{label}: bloom accounting leak"
        );

        // The bulk flush must mirror the stats struct exactly.
        assert_eq!(rec.value(Counter::CandidatesEmitted), c, "{label}");
        assert_eq!(rec.value(Counter::PairTests), stats.pair_tests, "{label}");
        assert_eq!(
            rec.value(Counter::BloomQueries),
            stats.bloom_queries,
            "{label}"
        );
        assert_eq!(rec.value(Counter::BloomHits), stats.bloom_hits, "{label}");
        assert_eq!(
            rec.value(Counter::BloomWordRejects),
            stats.bf_word_rejects,
            "{label}"
        );
        assert_eq!(
            rec.value(Counter::BloomBitRejects),
            stats.bf_bit_rejects,
            "{label}"
        );
        assert_eq!(
            rec.value(Counter::AdjacencyProbes),
            stats.adjacency_probes,
            "{label}"
        );
        assert_eq!(
            rec.value(Counter::PeakBytes),
            stats.peak_bytes as u64,
            "{label}"
        );

        // An unlimited-budget run closes all three phases, in order.
        let phases = rec.phases();
        let names: Vec<&str> = phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["filter", "bloom_build", "refine"], "{label}");
        for pair in phases.windows(2) {
            assert!(
                pair[0].start_nanos <= pair[1].start_nanos,
                "{label}: phases out of order"
            );
        }
        for p in &phases {
            assert!(
                p.end_nanos >= p.start_nanos,
                "{label}: span `{}` ends before it starts",
                p.name
            );
        }
    }
}

/// `BaseSky` has no filter phase: its candidate pool is every vertex,
/// and the flush mirrors that.
#[test]
fn base_sky_counters_cover_every_vertex() {
    for (label, g) in sweep() {
        let rec = CountingRecorder::new();
        let out = base_sky_recorded(&g, &rec);
        assert_eq!(out.stats.candidate_count, g.num_vertices(), "{label}");
        assert_eq!(
            rec.value(Counter::CandidatesEmitted),
            g.num_vertices() as u64,
            "{label}"
        );
        assert_eq!(
            rec.value(Counter::PairTests),
            out.stats.pair_tests,
            "{label}"
        );
        // BaseSky never touches a bloom filter.
        assert_eq!(rec.value(Counter::BloomQueries), 0, "{label}");
    }
}

/// The `NoopRecorder` twins return results identical to the
/// uninstrumented entry points, field by field, for every kernel.
#[test]
fn noop_recorder_runs_match_their_uninstrumented_twins() {
    let noop = NoopRecorder;
    let cfg = RefineConfig::default();
    for (label, g) in sweep() {
        assert_same_skyline(
            &format!("{label}/refine"),
            &filter_refine_sky(&g, &cfg),
            &filter_refine_sky_recorded(&g, &cfg, &noop),
        );
        assert_same_skyline(
            &format!("{label}/base"),
            &base_sky(&g),
            &base_sky_recorded(&g, &noop),
        );
        assert_same_skyline(
            &format!("{label}/par"),
            &filter_refine_sky_par(&g, &cfg, 2),
            &filter_refine_sky_par_recorded(&g, &cfg, 2, &noop),
        );

        let (bnb_clique, bnb_stats) = max_clique_bnb(&g);
        let bnb_rec = max_clique_bnb_recorded(&g, &noop);
        assert_eq!(bnb_rec.clique, bnb_clique, "{label}/bnb");
        assert_eq!(bnb_rec.stats, bnb_stats, "{label}/bnb");

        let (brb_clique, brb_stats) = mc_brb(&g);
        let brb_rec = mc_brb_recorded(&g, &noop);
        assert_eq!(brb_rec.clique, brb_clique, "{label}/mcbrb");
        assert_eq!(brb_rec.stats, brb_stats, "{label}/mcbrb");

        let nsm = nei_sky_mc(&g);
        let nsm_rec = nei_sky_mc_recorded(&g, &noop);
        assert_eq!(nsm_rec.clique, nsm.clique, "{label}/neisky_mc");
        assert_eq!(nsm_rec.stats, nsm.stats, "{label}/neisky_mc");
        assert_eq!(nsm_rec.skyline_size, nsm.skyline_size, "{label}/neisky_mc");

        let topk = top_k_cliques(&g, 3, TopkMode::NeiSky);
        let topk_rec = top_k_cliques_recorded(&g, 3, TopkMode::NeiSky, &noop);
        assert_eq!(topk_rec.cliques, topk.cliques, "{label}/topk");
        assert_eq!(topk_rec.seeds, topk.seeds, "{label}/topk");
        assert_eq!(topk_rec.stats, topk.stats, "{label}/topk");
    }

    // Greedy group centrality is quadratic in the BFS frontier — one
    // mid-size graph keeps the twin check meaningful and fast.
    let g = chung_lu_power_law(200, 2.7, 6.0, 11);
    let opts = GreedyOptions::optimized();
    let plain = greedy_group(&g, Harmonic, 4, &opts);
    let twin = greedy_group_recorded(&g, Harmonic, 4, &opts, &noop);
    assert_eq!(twin.group, plain.group, "greedy group diverged");
    assert_eq!(twin.score, plain.score, "greedy score diverged");
    assert_eq!(twin.gain_evaluations, plain.gain_evaluations);
    assert_eq!(twin.lazy_skips, plain.lazy_skips);
    assert_eq!(twin.score_trace, plain.score_trace);

    let plain = nei_sky_group(&g, Closeness, 4, true);
    let twin = nei_sky_group_recorded(&g, Closeness, 4, true, &noop);
    assert_eq!(
        twin.greedy.group, plain.greedy.group,
        "nei_sky group diverged"
    );
    assert_eq!(twin.greedy.score, plain.greedy.score);
    assert_eq!(twin.greedy.gain_evaluations, plain.greedy.gain_evaluations);
    assert_eq!(twin.skyline_size, plain.skyline_size);
}

/// Skyline-restricted branch-and-bound never expands more nodes than
/// the unrestricted solver, every seed is either pruned or searched,
/// and the recorder mirrors the clique stats exactly.
#[test]
fn skyline_pruning_shrinks_the_clique_search() {
    for (label, g) in sweep() {
        let rec = CountingRecorder::new();
        let out = nei_sky_mc_recorded(&g, &rec);
        let (bnb_clique, bnb_stats) = max_clique_bnb(&g);
        assert_eq!(
            out.clique.len(),
            bnb_clique.len(),
            "{label}: clique size diverged"
        );

        // ISSUE invariant: nodes expanded with skyline pruning never
        // exceed nodes expanded without it.
        assert!(
            out.stats.branches <= bnb_stats.branches,
            "{label}: skyline pruning expanded {} > {} nodes",
            out.stats.branches,
            bnb_stats.branches
        );
        // Each skyline seed is either core-pruned or seeds one root call.
        assert_eq!(
            out.stats.root_calls + out.stats.skyline_prunes,
            out.skyline_size as u64,
            "{label}: seed accounting leak"
        );

        assert_eq!(
            rec.value(Counter::NodesExpanded),
            out.stats.branches,
            "{label}"
        );
        assert_eq!(
            rec.value(Counter::BoundCuts),
            out.stats.bound_prunes,
            "{label}"
        );
        assert_eq!(
            rec.value(Counter::RootCalls),
            out.stats.root_calls,
            "{label}"
        );
        assert_eq!(
            rec.value(Counter::SkylinePrunes),
            out.stats.skyline_prunes,
            "{label}"
        );
        assert_eq!(
            rec.value(Counter::CandidatesEmitted),
            out.skyline_size as u64,
            "{label}"
        );
        let names: Vec<String> = rec.phases().into_iter().map(|p| p.name).collect();
        assert_eq!(names, ["neisky_mc"], "{label}");
    }
}

/// Greedy centrality flushes its evaluation counters through the
/// recorder, and the skyline-restricted variant reports its pool size.
#[test]
fn greedy_counters_flush_through_the_recorder() {
    let g = chung_lu_power_law(200, 2.7, 6.0, 7);
    let rec = CountingRecorder::new();
    let out = greedy_group_recorded(&g, Harmonic, 3, &GreedyOptions::optimized(), &rec);
    assert_eq!(rec.value(Counter::GainEvaluations), out.gain_evaluations);
    assert_eq!(rec.value(Counter::LazySkips), out.lazy_skips);
    assert!(out.gain_evaluations >= out.group.len() as u64);
    let names: Vec<String> = rec.phases().into_iter().map(|p| p.name).collect();
    assert_eq!(names, ["greedy"]);

    let rec = CountingRecorder::new();
    let out = nei_sky_group_recorded(&g, Closeness, 3, true, &rec);
    assert_eq!(
        rec.value(Counter::CandidatesEmitted),
        out.skyline_size as u64
    );
    assert_eq!(
        rec.value(Counter::GainEvaluations),
        out.greedy.gain_evaluations
    );
    let names: Vec<String> = rec.phases().into_iter().map(|p| p.name).collect();
    assert_eq!(names, ["skyline", "greedy"]);
}

/// The incremental engine's counters flush exactly, per-delta dirty
/// sets never exceed the 2-hop bound of the touched endpoints, and a
/// zero-delta update is a byte-identical no-op on both the witness
/// array and the counter table.
#[test]
fn dynamic_counters_flush_and_respect_the_two_hop_bound() {
    use nsky_graph::{DeltaGraph, EdgeDelta};
    use nsky_skyline::{domination, MutableSkyline};
    let mut rng = SplitMix64::new(0xD1_4411);
    for (label, g) in sweep() {
        let n = g.num_vertices();
        if n < 2 {
            continue;
        }
        let mut engine = MutableSkyline::new(g.clone());
        for step in 0..12 {
            let u = (rng.next() % n as u64) as u32;
            let mut v = (rng.next() % n as u64) as u32;
            if u == v {
                v = (v + 1) % n as u32;
            }
            let pre = engine.current_graph();
            let d = if rng.next() % 2 == 0 {
                EdgeDelta::Insert(u, v)
            } else {
                EdgeDelta::Delete(u, v)
            };
            let rec = CountingRecorder::new();
            let out = engine.apply_batch_recorded(&[d], &rec);
            assert_eq!(out.completion, Completion::Complete, "{label} step {step}");

            // The bulk flush mirrors the outcome stats exactly.
            assert_eq!(
                rec.value(Counter::DeltasApplied),
                out.stats.applied,
                "{label}"
            );
            assert_eq!(
                rec.value(Counter::DirtyVertices),
                out.stats.dirty_vertices,
                "{label}"
            );
            assert_eq!(
                rec.value(Counter::ScopedRefines),
                out.stats.scoped_refines,
                "{label}"
            );

            if out.stats.applied == 0 {
                // A no-op delta counts as skipped and touches nothing.
                assert_eq!(out.stats.skipped, 1, "{label} step {step}");
                assert_eq!(out.stats.dirty_vertices, 0, "{label} step {step}");
                assert_eq!(engine.num_edges(), pre.num_edges(), "{label} step {step}");
                continue;
            }
            // Complete runs refine exactly the dirty set, and the dirty
            // set is bounded by the closed 2-hop balls of the touched
            // endpoints on the edge-present graph (after an insert /
            // before a delete).
            assert_eq!(
                out.stats.scoped_refines, out.stats.dirty_vertices,
                "{label} step {step}: refines != dirty"
            );
            let edge_present = if d.is_insert() {
                let mut dg = DeltaGraph::from_graph(pre);
                dg.apply(d);
                dg.materialize()
            } else {
                pre
            };
            let mut ball = domination::two_hop_neighbors(&edge_present, u);
            ball.extend(domination::two_hop_neighbors(&edge_present, v));
            ball.push(u);
            ball.push(v);
            ball.sort_unstable();
            ball.dedup();
            assert!(
                out.stats.dirty_vertices <= ball.len() as u64,
                "{label} step {step}: dirty {} exceeds 2-hop bound {}",
                out.stats.dirty_vertices,
                ball.len()
            );
        }

        // Zero-delta update: counters stay zero, the witness array is
        // byte-identical, and nothing is recorded.
        let before = engine.dominator().to_vec();
        let rec = CountingRecorder::new();
        let out = engine.apply_batch_recorded(&[], &rec);
        assert_eq!(out.completion, Completion::Complete, "{label}");
        assert_eq!(engine.dominator(), before.as_slice(), "{label}");
        assert_eq!(out.stats.applied, 0, "{label}");
        assert_eq!(out.stats.skipped, 0, "{label}");
        assert_eq!(rec.value(Counter::DeltasApplied), 0, "{label}");
        assert_eq!(rec.value(Counter::DirtyVertices), 0, "{label}");
        assert_eq!(rec.value(Counter::ScopedRefines), 0, "{label}");
    }
}

/// A report built from a live recorder survives the JSON round trip;
/// short writes (via the fault-injected sink) and bit flips are
/// rejected with the matching typed error, never a garbage report.
#[test]
fn run_reports_round_trip_and_reject_corruption() {
    let g = erdos_renyi(48, 0.15, 42);
    let rec = CountingRecorder::new();
    let result = filter_refine_sky_recorded(&g, &RefineConfig::default(), &rec);
    let mut report =
        RunReport::from_recorder("FilterRefineSky", g.fingerprint(), result.completion, &rec);
    report.push_event("budget tripped by nothing — sentinel \"quoted\" event");

    let json = report.to_json();
    let parsed = RunReport::from_json(&json).expect("intact report parses");
    assert_eq!(parsed, report);
    assert_eq!(parsed.schema_version, SCHEMA_VERSION);
    assert_eq!(
        parsed.counter("candidates_emitted"),
        Some(result.stats.candidate_count as u64)
    );

    // A crash-truncated file: the ShortWrite sink lies about success,
    // so only the decoder's checksum trailer can catch the loss.
    for budget in [2, 10, json.len() / 2, json.len() - 2] {
        let mut sink = FaultFile::new(budget, FaultKind::ShortWrite);
        report
            .write_to(&mut sink)
            .expect("short writes lie about success");
        let prefix = std::str::from_utf8(sink.written()).expect("prefix cut at char boundary");
        let err = RunReport::from_json(prefix).expect_err("truncated report must not parse");
        assert!(
            matches!(err, ReportError::Truncated | ReportError::ChecksumMismatch),
            "budget {budget}: unexpected error {err:?}"
        );
    }

    // A single flipped byte in the body fails the checksum.
    let mut flipped = json.clone().into_bytes();
    let target = json
        .find("candidates_emitted")
        .expect("counter row present");
    flipped[target] ^= 0x04; // 'c' -> 'g', still valid UTF-8
    let err = RunReport::from_json(std::str::from_utf8(&flipped).expect("still utf-8"))
        .expect_err("bit flip must not parse");
    assert_eq!(err, ReportError::ChecksumMismatch);

    // Future schema versions are rejected with the version surfaced.
    let mut future = report.clone();
    future.schema_version = SCHEMA_VERSION + 1;
    let err = RunReport::from_json(&future.to_json()).expect_err("future schema must not parse");
    assert_eq!(
        err,
        ReportError::SchemaVersion {
            found: u64::from(SCHEMA_VERSION) + 1
        }
    );
}
