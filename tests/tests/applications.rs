//! Cross-crate application correctness: skyline pruning must never
//! change results — only how much work finding them takes.

use nsky_centrality::greedy::{greedy_group, GreedyOptions};
use nsky_centrality::group::group_score;
use nsky_centrality::measure::{Closeness, Decay, Harmonic};
use nsky_centrality::neisky::{nei_sky_gc, nei_sky_gh, nei_sky_group};
use nsky_clique::{is_clique, max_clique_bnb, mc_brb, nei_sky_mc, top_k_cliques, TopkMode};
use nsky_graph::generators::{affiliation_model, erdos_renyi, leafy_preferential};
use nsky_graph::ops::induced_subgraph;
use nsky_graph::VertexId;

#[test]
fn group_centrality_pruning_preserves_scores() {
    for seed in 0..3 {
        let g = leafy_preferential(600, 0.9, 1.0, 6, seed);
        for k in [1usize, 5, 12] {
            let base_gc = greedy_group(&g, Closeness, k, &GreedyOptions::optimized());
            let nei_gc = nei_sky_gc(&g, k);
            assert!(
                nei_gc.greedy.score >= base_gc.score - 1e-9,
                "GCM seed {seed} k {k}: {} < {}",
                nei_gc.greedy.score,
                base_gc.score
            );
            let base_gh = greedy_group(&g, Harmonic, k, &GreedyOptions::optimized());
            let nei_gh = nei_sky_gh(&g, k);
            assert!(
                nei_gh.greedy.score >= base_gh.score - 1e-9,
                "GHM {seed}/{k}"
            );
        }
    }
}

#[test]
fn decay_measure_prunes_safely_too() {
    // The Sec. IV-D claim: any shortest-path group measure works.
    let g = leafy_preferential(400, 0.9, 1.0, 6, 9);
    let m = Decay::new(0.5);
    let base = greedy_group(&g, m, 6, &GreedyOptions::optimized());
    let nei = nei_sky_group(&g, m, 6, true);
    assert!(nei.greedy.score >= base.score - 1e-9);
    // Scores are genuine (re-evaluated from scratch).
    let check = group_score(&g, m, &nei.greedy.group);
    assert!((check - nei.greedy.score).abs() < 1e-9);
}

#[test]
fn clique_solvers_agree_everywhere() {
    for seed in 0..4 {
        let g = affiliation_model(400, 4, 8, 0.6, seed);
        let (bnb, _) = max_clique_bnb(&g);
        let (brb, _) = mc_brb(&g);
        let nei = nei_sky_mc(&g);
        assert_eq!(bnb.len(), brb.len(), "seed {seed}");
        assert_eq!(bnb.len(), nei.clique.len(), "seed {seed}");
        assert!(is_clique(&g, &nei.clique));
    }
    for seed in 0..4 {
        let g = erdos_renyi(80, 0.2, seed);
        assert_eq!(mc_brb(&g).0.len(), nei_sky_mc(&g).clique.len());
    }
}

#[test]
fn topk_rounds_are_exact_for_both_modes() {
    let g = affiliation_model(250, 4, 7, 0.6, 11);
    for mode in [TopkMode::Base, TopkMode::NeiSky] {
        let out = top_k_cliques(&g, 5, mode);
        let mut removed: Vec<VertexId> = Vec::new();
        for (round, c) in out.cliques.iter().enumerate() {
            let keep: Vec<VertexId> = g.vertices().filter(|u| !removed.contains(u)).collect();
            let (sub, _) = induced_subgraph(&g, &keep);
            let (exact, _) = mc_brb(&sub);
            assert_eq!(
                c.len(),
                exact.len(),
                "{mode:?} round {round} not the residual maximum"
            );
            assert!(is_clique(&g, c));
            removed.push(out.seeds[round]);
        }
    }
}

#[test]
fn skyline_members_lead_greedy_groups() {
    // The first pick of the unrestricted greedy is always achievable by
    // a skyline vertex (Lemma 3/4 via swaps): restricted round-1 score
    // matches unrestricted round-1 score.
    for seed in 0..4 {
        let g = leafy_preferential(500, 0.92, 1.2, 6, seed + 50);
        let base = greedy_group(&g, Harmonic, 1, &GreedyOptions::default());
        let nei = nei_sky_group(&g, Harmonic, 1, false);
        assert!(
            (base.score - nei.greedy.score).abs() < 1e-9,
            "seed {}: round-1 scores must match exactly ({} vs {})",
            seed + 50,
            base.score,
            nei.greedy.score
        );
    }
}
