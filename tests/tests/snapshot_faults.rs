//! Crash-safety tests for the snapshot/resume layer.
//!
//! The acceptance bar is *equivalence*: for every kernel, tripping the
//! run at **every** poll point, snapshotting, round-tripping the
//! snapshot through its wire encoding, and resuming under an unlimited
//! budget must reproduce the uninterrupted run's answer exactly. On top
//! of that, every injected storage corruption — torn tails, bit flips,
//! short writes, out-of-space writers, wrong graph/kernel — must be
//! rejected with a typed [`RecoveryError`] and degrade to a clean
//! from-scratch run, never a panic or a wrong answer.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use nsky_centrality::greedy::{greedy_group, greedy_group_resumable, GreedyOptions};
use nsky_centrality::measure::Harmonic;
use nsky_centrality::neisky::{nei_sky_group, nei_sky_group_resumable};
use nsky_clique::{
    max_clique_bnb, max_clique_bnb_resumable, mc_brb, mc_brb_resumable, nei_sky_mc,
    nei_sky_mc_resumable, top_k_cliques, top_k_cliques_resumable, TopkMode,
};
use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};
use nsky_graph::Graph;
use nsky_skyline::budget::{ExecutionBudget, TripClock};
use nsky_skyline::snapshot::{
    FaultFile, FaultKind, FileCheckpointer, RecoveryError, ResumableRun, Snapshot,
};
use nsky_skyline::{
    base_sky, base_sky_resumable, filter_refine_sky, filter_refine_sky_par_resumable,
    filter_refine_sky_resumable, RefineConfig,
};

/// A budget with a deterministic clock tripping on poll `k`, polling on
/// every tick, plus the clock handle for poll counting.
fn trip_budget(k: u64) -> (ExecutionBudget, Arc<TripClock>) {
    let clock = Arc::new(TripClock::at_poll(k));
    let budget = ExecutionBudget::unlimited()
        .deadline(Arc::clone(&clock))
        .check_interval(1);
    (budget, clock)
}

/// A scratch path unique to this test process and `label`.
fn scratch_path(label: &str) -> std::path::PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nsky-snapshot-faults-{}-{label}-{seq}.ck",
        std::process::id()
    ))
}

/// The equivalence sweep: calibrate the kernel's total poll count, then
/// for **every** poll point `k` trip the run there, round-trip the
/// returned snapshot through bytes, resume under an unlimited budget,
/// and hand the resumed outcome to `check` (which asserts equality with
/// the uninterrupted reference).
fn kill_sweep<T>(
    label: &str,
    run: &dyn Fn(&ExecutionBudget, Option<&Snapshot>) -> ResumableRun<T>,
    check: &dyn Fn(&T, &str),
) {
    let (budget, clock) = trip_budget(u64::MAX);
    let reference = run(&budget, None);
    assert!(
        reference.snapshot.is_none() && reference.recovery.is_none(),
        "{label}: unlimited run must complete cleanly"
    );
    let total = clock.polls();
    assert!(total > 4, "{label}: too few polls to sweep ({total})");
    for k in 1..total {
        let (budget, _clock) = trip_budget(k);
        let tripped = run(&budget, None);
        let snap = tripped
            .snapshot
            .unwrap_or_else(|| panic!("{label} k={k}/{total}: trip produced no snapshot"));
        // Wire round-trip: what a process restart would read from disk.
        let bytes = snap.to_bytes();
        let snap = Snapshot::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{label} k={k}/{total}: re-read failed: {e}"));
        let resumed = run(&ExecutionBudget::unlimited(), Some(&snap));
        assert!(
            resumed.snapshot.is_none(),
            "{label} k={k}/{total}: resumed run did not complete"
        );
        assert!(
            resumed.recovery.is_none(),
            "{label} k={k}/{total}: genuine snapshot rejected: {:?}",
            resumed.recovery
        );
        check(&resumed.outcome, &format!("{label} k={k}/{total}"));
    }
}

#[test]
fn base_sky_kill_sweep() {
    let g = chung_lu_power_law(90, 2.8, 5.0, 1);
    let full = base_sky(&g);
    kill_sweep(
        "base-sky",
        &|b, r| base_sky_resumable(&g, b, r, None),
        &|out, ctx| {
            assert_eq!(out.skyline, full.skyline, "{ctx}");
        },
    );
}

#[test]
fn filter_refine_kill_sweep() {
    let g = chung_lu_power_law(90, 2.8, 5.0, 2);
    let cfg = RefineConfig::default();
    let full = filter_refine_sky(&g, &cfg);
    kill_sweep(
        "filter-refine",
        &|b, r| filter_refine_sky_resumable(&g, &cfg, b, r, None),
        &|out, ctx| {
            assert_eq!(out.skyline, full.skyline, "{ctx}");
        },
    );
}

#[test]
fn parallel_refine_kill_sweep() {
    let g = chung_lu_power_law(90, 2.8, 5.0, 3);
    let cfg = RefineConfig::default();
    let full = filter_refine_sky(&g, &cfg);
    // Two workers race the trip, so the exact trip poll is not
    // deterministic — but the resumed answer must still be exact.
    let (budget, clock) = trip_budget(u64::MAX);
    let reference = filter_refine_sky_par_resumable(&g, &cfg, 2, &budget, None, None);
    assert_eq!(reference.outcome.skyline, full.skyline);
    let total = clock.polls();
    for k in 1..total {
        let (budget, _clock) = trip_budget(k);
        let tripped = filter_refine_sky_par_resumable(&g, &cfg, 2, &budget, None, None);
        let Some(snap) = tripped.snapshot else {
            // Workers may legitimately finish before observing the trip.
            assert_eq!(tripped.outcome.skyline, full.skyline, "par k={k}");
            continue;
        };
        let snap = Snapshot::from_bytes(&snap.to_bytes()).expect("re-read");
        let resumed = filter_refine_sky_par_resumable(
            &g,
            &cfg,
            2,
            &ExecutionBudget::unlimited(),
            Some(&snap),
            None,
        );
        assert!(resumed.recovery.is_none(), "par k={k}");
        assert_eq!(resumed.outcome.skyline, full.skyline, "par k={k}");
    }
}

#[test]
fn clique_bnb_kill_sweep() {
    let g = erdos_renyi(40, 0.25, 4);
    let (full, _) = max_clique_bnb(&g);
    kill_sweep(
        "clique-bnb",
        &|b, r| max_clique_bnb_resumable(&g, b, r, None),
        &|out, ctx| {
            assert_eq!(out.clique, full, "{ctx}");
        },
    );
}

#[test]
fn mc_brb_kill_sweep() {
    let g = chung_lu_power_law(120, 2.6, 6.0, 5);
    let (full, _) = mc_brb(&g);
    kill_sweep(
        "mc-brb",
        &|b, r| mc_brb_resumable(&g, b, r, None),
        &|out, ctx| {
            assert_eq!(out.clique, full, "{ctx}");
        },
    );
}

#[test]
fn nei_sky_mc_kill_sweep() {
    let g = chung_lu_power_law(120, 2.6, 6.0, 6);
    let full = nei_sky_mc(&g);
    kill_sweep(
        "nei-sky-mc",
        &|b, r| nei_sky_mc_resumable(&g, b, r, None),
        &|out, ctx| {
            assert_eq!(out.clique, full.clique, "{ctx}");
            assert_eq!(out.skyline_size, full.skyline_size, "{ctx}");
        },
    );
}

#[test]
fn topk_base_kill_sweep() {
    let g = erdos_renyi(32, 0.3, 7);
    let full = top_k_cliques(&g, 3, TopkMode::Base);
    kill_sweep(
        "topk-base",
        &|b, r| top_k_cliques_resumable(&g, 3, TopkMode::Base, b, r, None),
        &|out, ctx| {
            assert_eq!(out.cliques, full.cliques, "{ctx}");
            assert_eq!(out.seeds, full.seeds, "{ctx}");
        },
    );
}

#[test]
fn topk_neisky_kill_sweep() {
    let g = erdos_renyi(40, 0.25, 8);
    let full = top_k_cliques(&g, 4, TopkMode::NeiSky);
    kill_sweep(
        "topk-neisky",
        &|b, r| top_k_cliques_resumable(&g, 4, TopkMode::NeiSky, b, r, None),
        &|out, ctx| {
            assert_eq!(out.cliques, full.cliques, "{ctx}");
            assert_eq!(out.seeds, full.seeds, "{ctx}");
        },
    );
}

#[test]
fn greedy_plain_kill_sweep() {
    let g = erdos_renyi(36, 0.12, 9);
    let opts = GreedyOptions::default();
    let full = greedy_group(&g, Harmonic, 3, &opts);
    kill_sweep(
        "greedy-plain",
        &|b, r| greedy_group_resumable(&g, Harmonic, 3, &opts, b, r, None),
        &|out, ctx| {
            assert_eq!(out.group, full.group, "{ctx}");
            assert_eq!(
                out.score_trace, full.score_trace,
                "{ctx}: float replay drifted"
            );
            assert_eq!(out.score, full.score, "{ctx}");
        },
    );
}

#[test]
fn greedy_celf_kill_sweep() {
    let g = erdos_renyi(36, 0.12, 10);
    let opts = GreedyOptions::optimized();
    let full = greedy_group(&g, Harmonic, 3, &opts);
    kill_sweep(
        "greedy-celf",
        &|b, r| greedy_group_resumable(&g, Harmonic, 3, &opts, b, r, None),
        &|out, ctx| {
            assert_eq!(out.group, full.group, "{ctx}");
            assert_eq!(
                out.score_trace, full.score_trace,
                "{ctx}: float replay drifted"
            );
            assert_eq!(out.score, full.score, "{ctx}");
        },
    );
}

#[test]
fn nei_sky_group_kill_sweep() {
    let g = chung_lu_power_law(56, 2.7, 5.0, 11);
    let full = nei_sky_group(&g, Harmonic, 3, true);
    kill_sweep(
        "nei-sky-group",
        &|b, r| nei_sky_group_resumable(&g, Harmonic, 3, true, b, r, None),
        &|out, ctx| {
            assert_eq!(out.greedy.group, full.greedy.group, "{ctx}");
            assert_eq!(out.greedy.score, full.greedy.score, "{ctx}");
            assert_eq!(out.skyline_size, full.skyline_size, "{ctx}");
        },
    );
}

/// Crash-and-reload: run with a file checkpointer and a deadline trip,
/// pretend the process died (drop the in-memory snapshot), reload
/// whatever the *disk* holds, and resume from that. Disk may lag the
/// trip point by up to one checkpoint period — resuming must still
/// converge to the uninterrupted answer.
#[test]
fn crash_reload_from_disk_checkpoint_converges() {
    let g = chung_lu_power_law(120, 2.7, 5.0, 12);
    let full = base_sky(&g);
    let (budget, clock) = trip_budget(u64::MAX);
    let _ = base_sky_resumable(&g, &budget, None, None);
    let total = clock.polls();
    for k in [total / 4, total / 2, (3 * total) / 4] {
        let path = scratch_path("crash-reload");
        let (budget, _clock) = trip_budget(k);
        budget.set_checkpoint_period(5);
        let mut sink = FileCheckpointer::new(&path);
        let tripped = base_sky_resumable(&g, &budget, None, Some(&mut sink));
        assert!(tripped.snapshot.is_some(), "k={k}: no final snapshot");
        // Crash: only the disk survives.
        let resume = Snapshot::load(&path).ok();
        let resumed = base_sky_resumable(&g, &ExecutionBudget::unlimited(), resume.as_ref(), None);
        assert!(resumed.recovery.is_none(), "k={k}");
        assert_eq!(resumed.outcome.skyline, full.skyline, "k={k}");
        let _ = std::fs::remove_file(&path);
    }
}

/// Periodic checkpointing under an otherwise unlimited budget must not
/// change the answer, and the last checkpoint on disk must itself be a
/// usable resume point.
#[test]
fn periodic_checkpoints_preserve_answers_and_stay_loadable() {
    let g = chung_lu_power_law(100, 2.7, 5.0, 13);
    let full = filter_refine_sky(&g, &RefineConfig::default());
    let path = scratch_path("periodic");
    let budget = ExecutionBudget::unlimited().check_interval(1);
    budget.set_checkpoint_period(7);
    let mut sink = FileCheckpointer::new(&path);
    let run =
        filter_refine_sky_resumable(&g, &RefineConfig::default(), &budget, None, Some(&mut sink));
    assert!(run.snapshot.is_none(), "checkpointed run must still finish");
    assert_eq!(run.outcome.skyline, full.skyline);
    // The file holds some mid-run state; resuming from it re-converges.
    let snap = Snapshot::load(&path).expect("at least one checkpoint landed");
    let resumed = filter_refine_sky_resumable(
        &g,
        &RefineConfig::default(),
        &ExecutionBudget::unlimited(),
        Some(&snap),
        None,
    );
    assert!(resumed.recovery.is_none());
    assert_eq!(resumed.outcome.skyline, full.skyline);
    let _ = std::fs::remove_file(&path);
}

/// A genuine mid-run snapshot of `base_sky` on `g`, as wire bytes.
fn genuine_snapshot(g: &Graph) -> Vec<u8> {
    let (budget, clock) = trip_budget(u64::MAX);
    let _ = base_sky_resumable(g, &budget, None, None);
    let (budget, _clock) = trip_budget(clock.polls() / 2);
    let tripped = base_sky_resumable(g, &budget, None, None);
    tripped.snapshot.expect("mid-run trip").to_bytes()
}

#[test]
fn every_torn_tail_is_rejected_with_a_typed_error() {
    let g = chung_lu_power_law(90, 2.8, 5.0, 14);
    let bytes = genuine_snapshot(&g);
    for len in 0..bytes.len() {
        let err = Snapshot::from_bytes(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("torn tail at {len} accepted"));
        assert!(
            matches!(
                err,
                RecoveryError::Truncated
                    | RecoveryError::ChecksumMismatch
                    | RecoveryError::BadMagic
            ),
            "torn tail at {len}: unexpected {err:?}"
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected_with_a_typed_error() {
    let g = chung_lu_power_law(90, 2.8, 5.0, 15);
    let bytes = genuine_snapshot(&g);
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << bit;
            assert!(
                Snapshot::from_bytes(&corrupt).is_err(),
                "bit flip at byte {i} bit {bit} accepted"
            );
        }
    }
}

#[test]
fn short_writes_and_enospc_never_yield_a_loadable_lie() {
    let g = chung_lu_power_law(90, 2.8, 5.0, 16);
    let bytes = genuine_snapshot(&g);
    let snap = Snapshot::from_bytes(&bytes).expect("genuine");
    for budget in 0..bytes.len() {
        // A writer that silently drops the tail (crash before flush):
        // the surviving prefix must never parse as a valid snapshot.
        let mut disk = FaultFile::new(budget, FaultKind::ShortWrite);
        snap.write_to(&mut disk).expect("short writes lie with Ok");
        assert!(
            Snapshot::from_bytes(disk.written()).is_err(),
            "short write at {budget} bytes produced a loadable snapshot"
        );
        // An out-of-space writer must surface a typed I/O error.
        let mut disk = FaultFile::new(budget, FaultKind::Enospc);
        assert!(
            snap.write_to(&mut disk).is_err(),
            "ENOSPC at {budget} bytes went unnoticed"
        );
    }
}

#[test]
fn unusable_snapshots_degrade_to_clean_fresh_runs() {
    let g = chung_lu_power_law(90, 2.8, 5.0, 17);
    let other = chung_lu_power_law(90, 2.8, 5.0, 18);
    let full = base_sky(&g);
    let snap = Snapshot::from_bytes(&genuine_snapshot(&other)).expect("genuine");

    // Wrong graph: typed GraphMismatch, then a clean from-scratch run.
    let run = base_sky_resumable(&g, &ExecutionBudget::unlimited(), Some(&snap), None);
    assert!(matches!(run.recovery, Some(RecoveryError::GraphMismatch)));
    assert_eq!(run.outcome.skyline, full.skyline);

    // Wrong kernel: a base-sky snapshot offered to the clique solver.
    let snap = Snapshot::from_bytes(&genuine_snapshot(&g)).expect("genuine");
    let (full_clique, _) = mc_brb(&g);
    let run = mc_brb_resumable(&g, &ExecutionBudget::unlimited(), Some(&snap), None);
    assert!(matches!(
        run.recovery,
        Some(RecoveryError::KernelMismatch { .. })
    ));
    assert_eq!(run.outcome.clique, full_clique);
}

#[test]
fn on_disk_corruption_is_caught_by_load() {
    let g = chung_lu_power_law(90, 2.8, 5.0, 19);
    let bytes = genuine_snapshot(&g);
    let snap = Snapshot::from_bytes(&bytes).expect("genuine");

    // Trailing garbage appended after a valid image.
    let path = scratch_path("trailing");
    snap.save(&path).expect("save");
    let mut on_disk = std::fs::read(&path).expect("read");
    on_disk.extend_from_slice(b"garbage");
    std::fs::write(&path, &on_disk).expect("write");
    assert!(matches!(
        Snapshot::load(&path),
        Err(RecoveryError::Malformed(_))
    ));
    let _ = std::fs::remove_file(&path);

    // A torn file (half the image) fails closed.
    let path = scratch_path("torn");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write");
    assert!(Snapshot::load(&path).is_err());
    let _ = std::fs::remove_file(&path);

    // A missing file is a typed I/O error, not a panic.
    let path = scratch_path("missing");
    assert!(matches!(Snapshot::load(&path), Err(RecoveryError::Io(_))));
}
