//! Structural claims from the paper, checked end-to-end.

use nsky_datasets::{bombing, karate, paper_datasets};
use nsky_graph::generators::special;
use nsky_skyline::domination::dominates;
use nsky_skyline::{filter_phase, filter_refine_sky, RefineConfig};

/// Fig. 2: exact skyline/candidate sizes on the special families.
#[test]
fn fig2_special_family_sizes() {
    for n in [3usize, 8, 33] {
        let r = filter_refine_sky(&special::clique(n), &RefineConfig::default());
        assert_eq!(r.len(), 1, "clique K{n}");
        assert_eq!(r.skyline, vec![0], "smallest-id twin survives");
    }
    for n in [5usize, 9, 40] {
        let r = filter_refine_sky(&special::cycle(n), &RefineConfig::default());
        assert_eq!(r.len(), n, "cycle C{n}");
    }
    for n in [4usize, 9, 40] {
        let r = filter_refine_sky(&special::path(n), &RefineConfig::default());
        assert_eq!(r.len(), n - 2, "path P{n}");
    }
    for levels in [2u32, 4, 6] {
        let t = special::complete_binary_tree(levels);
        let r = filter_refine_sky(&t, &RefineConfig::default());
        assert_eq!(
            r.len(),
            special::binary_tree_internal_count(levels),
            "tree levels={levels}: skyline = internal vertices"
        );
    }
}

/// Lemma 1: `R ⊆ C` on every dataset stand-in.
#[test]
fn lemma1_on_dataset_standins() {
    for spec in paper_datasets() {
        let g = spec.build();
        let c = filter_phase(&g);
        let r = filter_refine_sky(&g, &RefineConfig::default());
        for &u in &r.skyline {
            assert!(c.is_candidate(u), "{}: {u} in R but not C", spec.name);
        }
        assert!(r.len() <= c.candidates.len());
    }
}

/// Fig. 5's headline: `|R| ≪ |V|` on (power-law-like) dataset stand-ins.
#[test]
fn skyline_much_smaller_than_vertex_set() {
    for spec in paper_datasets() {
        let g = spec.build();
        let r = filter_refine_sky(&g, &RefineConfig::default());
        let frac = r.len() as f64 / g.num_vertices() as f64;
        assert!(
            frac < 0.55,
            "{}: |R|/|V| = {frac:.2} should be well below 1",
            spec.name
        );
    }
}

/// Fig. 13 (Karate): the embedded original graph gives exactly the
/// paper's 15-vertex skyline (44 %).
#[test]
fn karate_case_study_exact() {
    let g = karate();
    let r = filter_refine_sky(&g, &RefineConfig::default());
    assert_eq!(r.len(), 15);
    assert_eq!(
        r.skyline,
        vec![0, 1, 2, 5, 6, 8, 13, 23, 24, 25, 27, 30, 31, 32, 33]
    );
    // The two club leaders (Mr. Hi = 0, John A. = 33) are skyline.
    assert!(r.contains(0) && r.contains(33));
}

/// Fig. 13 (Bombing stand-in): a clearly sub-50 % skyline with low-degree
/// vertices dominated, as the paper observes.
#[test]
fn bombing_case_study_shape() {
    let g = bombing();
    let r = filter_refine_sky(&g, &RefineConfig::default());
    let frac = r.len() as f64 / g.num_vertices() as f64;
    assert!(
        (0.15..=0.45).contains(&frac),
        "skyline share {frac:.2} out of the paper's band"
    );
    let mask = r.membership_mask();
    let avg = |m: bool| {
        let ids: Vec<_> = g.vertices().filter(|&u| mask[u as usize] == m).collect();
        ids.iter().map(|&u| g.degree(u)).sum::<usize>() as f64 / ids.len() as f64
    };
    assert!(
        avg(true) > avg(false),
        "skyline vertices should out-degree dominated ones"
    );
}

/// "Domination orders can only exist between a vertex and its 2-hop
/// reachable vertices" — checked against the mathematical relation for
/// non-isolated vertices.
#[test]
fn dominators_live_within_two_hops() {
    let g = bombing();
    for u in g.vertices() {
        if g.degree(u) == 0 {
            continue;
        }
        let n2 = nsky_skyline::domination::two_hop_neighbors(&g, u);
        for w in g.vertices() {
            if w != u && dominates(&g, w, u) {
                assert!(n2.binary_search(&w).is_ok());
            }
        }
    }
}

/// The dominator array is a certificate: every recorded witness truly
/// dominates, on all dataset stand-ins.
#[test]
fn dominator_witnesses_are_certificates() {
    for spec in paper_datasets().into_iter().take(2) {
        let mut spec = spec;
        spec.n /= 4;
        let g = spec.build();
        let r = filter_refine_sky(&g, &RefineConfig::default());
        for u in g.vertices() {
            let o = r.dominator[u as usize];
            if o != u {
                assert!(
                    dominates(&g, o, u),
                    "{}: {o} does not dominate {u}",
                    spec.name
                );
            }
        }
    }
}

/// Threshold graphs (introduction refs [7, 8]): the vicinal preorder is
/// total, so every vertex but one is dominated — a connected threshold
/// graph's skyline is a single vertex (isolated construction steps add
/// one skyline member each, by the operational convention).
#[test]
fn threshold_graph_skyline_is_one_vertex() {
    use nsky_graph::threshold::{random_threshold_graph, threshold_graph, ThresholdStep::*};
    for seed in 0..6 {
        let g = random_threshold_graph(40, 0.6, seed);
        let isolated = g.vertices().filter(|&u| g.degree(u) == 0).count();
        let r = filter_refine_sky(&g, &RefineConfig::default());
        assert_eq!(
            r.len(),
            1 + isolated,
            "seed {seed}: threshold skyline must be one non-isolated vertex"
        );
    }
    // Fully dominated construction: a clique ends with skyline {0}.
    let g = threshold_graph(&[Dominating, Dominating, Dominating]);
    assert_eq!(
        filter_refine_sky(&g, &RefineConfig::default()).skyline,
        vec![0]
    );
}
