//! Deterministic fault-injection tests for the execution-budget layer:
//! every instrumented kernel, tripped at an exact poll via
//! [`TripClock`], must stop within one check interval, report the right
//! [`Completion`], return a *valid* partial answer, and never panic.
//! With an unlimited budget every budgeted entry point must be
//! byte-identical to its open-loop twin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nsky_centrality::greedy::{greedy_group, greedy_group_budgeted, GreedyOptions};
use nsky_centrality::measure::{Closeness, Harmonic};
use nsky_centrality::neisky::{nei_sky_group, nei_sky_group_budgeted};
use nsky_clique::{
    is_clique, max_clique_bnb, max_clique_bnb_budgeted, mc_brb, mc_brb_budgeted, nei_sky_mc,
    nei_sky_mc_budgeted, top_k_cliques, top_k_cliques_budgeted, TopkMode,
};
use nsky_graph::generators::chung_lu_power_law;
use nsky_graph::Graph;
use nsky_skyline::budget::{CancelToken, Completion, DeadlineClock, ExecutionBudget, TripClock};
use nsky_skyline::{
    base_sky, base_sky_budgeted, filter_refine_sky, filter_refine_sky_budgeted,
    filter_refine_sky_par, filter_refine_sky_par_budgeted, RefineConfig,
};

fn graph(seed: u64) -> Graph {
    chung_lu_power_law(300, 2.8, 5.0, seed)
}

/// A budget with a deterministic clock tripping on poll `k` (and a
/// handle to the clock's poll counter), polling on every tick.
fn trip_budget(k: u64) -> (ExecutionBudget, Arc<TripClock>) {
    let clock = Arc::new(TripClock::at_poll(k));
    let budget = ExecutionBudget::unlimited()
        .deadline(Arc::clone(&clock))
        .check_interval(1);
    (budget, clock)
}

/// Calibrates a kernel: runs it under a never-tripping counting clock
/// and returns how many polls a complete run makes, so trip points can
/// be chosen strictly inside the run.
fn calibrate(run: impl FnOnce(&ExecutionBudget)) -> u64 {
    let (budget, clock) = trip_budget(u64::MAX);
    run(&budget);
    let total = clock.polls();
    assert!(
        total > 4,
        "kernel too small to fault-inject ({total} polls)"
    );
    total
}

/// Trip points spread across a run of `total` polls: first poll, middle
/// of the run, and the poll just before completion.
fn trip_points(total: u64) -> [u64; 3] {
    [1, total / 2, total - 1]
}

#[test]
fn unlimited_budget_is_byte_identical_everywhere() {
    for seed in 0..3 {
        let g = graph(seed);
        let unlimited = ExecutionBudget::unlimited;
        let cfg = RefineConfig::default();

        let open = base_sky(&g);
        let budgeted = base_sky_budgeted(&g, &unlimited());
        assert_eq!(open.skyline, budgeted.skyline);
        assert_eq!(budgeted.completion, Completion::Complete);

        let open = filter_refine_sky(&g, &cfg);
        let budgeted = filter_refine_sky_budgeted(&g, &cfg, &unlimited());
        assert_eq!(open.skyline, budgeted.skyline);
        assert_eq!(budgeted.completion, Completion::Complete);

        let open = filter_refine_sky_par(&g, &cfg, 3);
        let budgeted = filter_refine_sky_par_budgeted(&g, &cfg, 3, &unlimited());
        assert_eq!(open.skyline, budgeted.skyline);
        assert_eq!(budgeted.completion, Completion::Complete);

        let (open, _) = max_clique_bnb(&g);
        let budgeted = max_clique_bnb_budgeted(&g, &unlimited());
        assert_eq!(open, budgeted.clique);
        assert_eq!(budgeted.completion, Completion::Complete);

        let (open, _) = mc_brb(&g);
        let budgeted = mc_brb_budgeted(&g, &unlimited());
        assert_eq!(open, budgeted.clique);
        assert_eq!(budgeted.completion, Completion::Complete);

        let open = nei_sky_mc(&g);
        let budgeted = nei_sky_mc_budgeted(&g, &unlimited());
        assert_eq!(open.clique, budgeted.clique);
        assert_eq!(budgeted.completion, Completion::Complete);

        for mode in [TopkMode::Base, TopkMode::NeiSky] {
            let open = top_k_cliques(&g, 3, mode);
            let budgeted = top_k_cliques_budgeted(&g, 3, mode, &unlimited());
            assert_eq!(open.cliques, budgeted.cliques);
            assert_eq!(budgeted.completion, Completion::Complete);
        }

        for opts in [GreedyOptions::default(), GreedyOptions::optimized()] {
            let open = greedy_group(&g, Harmonic, 4, &opts);
            let budgeted = greedy_group_budgeted(&g, Harmonic, 4, &opts, &unlimited());
            assert_eq!(open.group, budgeted.group);
            assert_eq!(budgeted.completion, Completion::Complete);
        }

        let open = nei_sky_group(&g, Closeness, 4, true);
        let budgeted = nei_sky_group_budgeted(&g, Closeness, 4, true, &unlimited());
        assert_eq!(open.greedy.group, budgeted.greedy.group);
        assert_eq!(budgeted.greedy.completion, Completion::Complete);
    }
}

#[test]
fn base_sky_trips_at_exact_poll_with_sound_prefix() {
    let g = graph(1);
    let full = base_sky(&g);
    let total = calibrate(|b| {
        base_sky_budgeted(&g, b);
    });
    for k in trip_points(total) {
        let (budget, clock) = trip_budget(k);
        let partial = base_sky_budgeted(&g, &budget);
        assert_eq!(partial.completion, Completion::DeadlineExceeded, "k={k}");
        // Stops within one tick of the trip: the tripping poll is the
        // clock's last (sticky trips never re-consult the clock).
        assert_eq!(clock.polls(), k);
        for v in &partial.skyline {
            assert!(full.skyline.binary_search(v).is_ok(), "unsound partial");
        }
        if k == total - 1 {
            assert!(!partial.skyline.is_empty(), "k={k} verified nothing");
        }
    }
}

#[test]
fn refine_trips_at_exact_poll_with_sound_prefix() {
    let g = graph(2);
    let cfg = RefineConfig::default();
    let full = filter_refine_sky(&g, &cfg);
    let total = calibrate(|b| {
        filter_refine_sky_budgeted(&g, &cfg, b);
    });
    for k in trip_points(total) {
        let (budget, clock) = trip_budget(k);
        let partial = filter_refine_sky_budgeted(&g, &cfg, &budget);
        assert_eq!(partial.completion, Completion::DeadlineExceeded, "k={k}");
        assert_eq!(clock.polls(), k);
        for v in &partial.skyline {
            assert!(full.skyline.binary_search(v).is_ok(), "unsound partial");
        }
        if k == total - 1 {
            assert!(!partial.skyline.is_empty(), "k={k} verified nothing");
        }
    }
}

#[test]
fn parallel_refine_trips_and_workers_stop_within_one_interval() {
    let g = graph(3);
    let cfg = RefineConfig::default();
    let full = filter_refine_sky(&g, &cfg);
    let threads = 4;
    let total = calibrate(|b| {
        filter_refine_sky_par_budgeted(&g, &cfg, threads, b);
    });
    for k in trip_points(total) {
        let (budget, clock) = trip_budget(k);
        let partial = filter_refine_sky_par_budgeted(&g, &cfg, threads, &budget);
        assert_eq!(partial.completion, Completion::DeadlineExceeded);
        // Workers racing the publication of the sticky trip may each
        // land one more clock poll, but never a second.
        assert!(
            clock.polls() >= k && clock.polls() < k + threads as u64,
            "k={k}: {} polls",
            clock.polls()
        );
        for v in &partial.skyline {
            assert!(full.skyline.binary_search(v).is_ok(), "unsound partial");
        }
    }
}

#[test]
fn clique_kernels_trip_with_valid_nonempty_best_so_far() {
    let g = graph(4);

    let total = calibrate(|b| {
        max_clique_bnb_budgeted(&g, b);
    });
    for k in trip_points(total) {
        let (budget, clock) = trip_budget(k);
        let run = max_clique_bnb_budgeted(&g, &budget);
        assert_eq!(run.completion, Completion::DeadlineExceeded, "k={k}");
        assert_eq!(clock.polls(), k);
        assert!(!run.clique.is_empty() && is_clique(&g, &run.clique));
    }

    let total = calibrate(|b| {
        mc_brb_budgeted(&g, b);
    });
    for k in trip_points(total) {
        let (budget, clock) = trip_budget(k);
        let run = mc_brb_budgeted(&g, &budget);
        assert_eq!(run.completion, Completion::DeadlineExceeded, "k={k}");
        assert_eq!(clock.polls(), k);
        assert!(!run.clique.is_empty() && is_clique(&g, &run.clique));
    }

    let total = calibrate(|b| {
        nei_sky_mc_budgeted(&g, b);
    });
    for k in trip_points(total) {
        let (budget, clock) = trip_budget(k);
        let out = nei_sky_mc_budgeted(&g, &budget);
        assert_eq!(out.completion, Completion::DeadlineExceeded, "k={k}");
        assert_eq!(clock.polls(), k);
        assert!(!out.clique.is_empty() && is_clique(&g, &out.clique));
    }
}

#[test]
fn topk_trips_report_only_completed_rounds() {
    let g = graph(5);
    for mode in [TopkMode::Base, TopkMode::NeiSky] {
        let full = top_k_cliques(&g, 4, mode);
        let total = calibrate(|b| {
            top_k_cliques_budgeted(&g, 4, mode, b);
        });
        for k in trip_points(total) {
            let (budget, clock) = trip_budget(k);
            let partial = top_k_cliques_budgeted(&g, 4, mode, &budget);
            assert_eq!(partial.completion, Completion::DeadlineExceeded, "{mode:?}");
            assert_eq!(clock.polls(), k, "{mode:?}");
            assert!(partial.cliques.len() <= full.cliques.len());
            // Completed rounds are exact: a prefix of the full ranking.
            for (i, c) in partial.cliques.iter().enumerate() {
                assert_eq!(c, &full.cliques[i], "{mode:?} round {i} diverged");
            }
        }
    }
}

#[test]
fn greedy_trips_keep_the_committed_prefix() {
    let g = graph(6);
    for opts in [GreedyOptions::default(), GreedyOptions::optimized()] {
        let full = greedy_group(&g, Harmonic, 6, &opts);
        let total = calibrate(|b| {
            greedy_group_budgeted(&g, Harmonic, 6, &opts, b);
        });
        for k in trip_points(total) {
            let (budget, clock) = trip_budget(k);
            let partial = greedy_group_budgeted(&g, Harmonic, 6, &opts, &budget);
            assert_eq!(partial.completion, Completion::DeadlineExceeded);
            assert_eq!(clock.polls(), k);
            // The committed prefix is exactly the open-loop greedy's.
            assert!(partial.group.len() <= full.group.len());
            assert_eq!(partial.group, full.group[..partial.group.len()]);
        }
    }
}

#[test]
fn neisky_group_shares_one_budget_across_phases() {
    let g = graph(7);
    let total = calibrate(|b| {
        nei_sky_group_budgeted(&g, Closeness, 4, true, b);
    });
    for k in trip_points(total) {
        let (budget, _clock) = trip_budget(k);
        let out = nei_sky_group_budgeted(&g, Closeness, 4, true, &budget);
        assert_eq!(out.greedy.completion, Completion::DeadlineExceeded, "k={k}");
        assert!(out.greedy.group.len() <= 4);
    }
}

#[test]
fn memory_caps_trip_before_allocating() {
    let g = graph(8);
    let cfg = RefineConfig::default();

    let tiny = || ExecutionBudget::unlimited().memory_cap(64);
    assert_eq!(
        base_sky_budgeted(&g, &tiny()).completion,
        Completion::MemoryCapped
    );
    assert_eq!(
        filter_refine_sky_budgeted(&g, &cfg, &tiny()).completion,
        Completion::MemoryCapped
    );
    assert_eq!(
        filter_refine_sky_par_budgeted(&g, &cfg, 2, &tiny()).completion,
        Completion::MemoryCapped
    );
    assert_eq!(
        mc_brb_budgeted(&g, &tiny()).completion,
        Completion::MemoryCapped
    );
    assert_eq!(
        greedy_group_budgeted(&g, Harmonic, 3, &GreedyOptions::optimized(), &tiny()).completion,
        Completion::MemoryCapped
    );

    // A generous cap never trips and changes nothing.
    let roomy = ExecutionBudget::unlimited().memory_cap(1 << 30);
    let r = filter_refine_sky_budgeted(&g, &cfg, &roomy);
    assert_eq!(r.completion, Completion::Complete);
    assert_eq!(r.skyline, filter_refine_sky(&g, &cfg).skyline);
    assert!(roomy.charged_bytes() > 0, "refine charges its allocations");
}

#[test]
fn pre_cancelled_budget_stops_every_kernel_immediately() {
    let g = graph(9);
    let cfg = RefineConfig::default();
    let cancelled = || {
        let b = ExecutionBudget::unlimited().check_interval(1);
        b.cancel_token().cancel();
        b
    };
    assert_eq!(
        base_sky_budgeted(&g, &cancelled()).completion,
        Completion::Cancelled
    );
    assert_eq!(
        filter_refine_sky_budgeted(&g, &cfg, &cancelled()).completion,
        Completion::Cancelled
    );
    assert_eq!(
        filter_refine_sky_par_budgeted(&g, &cfg, 2, &cancelled()).completion,
        Completion::Cancelled
    );
    assert_eq!(
        mc_brb_budgeted(&g, &cancelled()).completion,
        Completion::Cancelled
    );
    assert_eq!(
        top_k_cliques_budgeted(&g, 2, TopkMode::NeiSky, &cancelled()).completion,
        Completion::Cancelled
    );
    assert_eq!(
        greedy_group_budgeted(&g, Harmonic, 3, &GreedyOptions::default(), &cancelled()).completion,
        Completion::Cancelled
    );
}

#[test]
fn cancellation_mid_run_is_observed_cooperatively() {
    // A worker thread cancels while the main thread grinds BaseSky on a
    // larger graph; the kernel must come back with `Cancelled` (or have
    // legitimately finished first on a very fast machine).
    let g = chung_lu_power_law(3_000, 2.6, 8.0, 10);
    let budget = ExecutionBudget::unlimited();
    let token = budget.cancel_token();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        });
        let r = base_sky_budgeted(&g, &budget);
        assert!(
            r.completion == Completion::Cancelled || r.completion == Completion::Complete,
            "unexpected status {:?}",
            r.completion
        );
    });
}

/// A deadline clock that never expires but raises the budget's
/// [`CancelToken`] on its `at`-th consultation — from whichever worker
/// thread happens to make that poll — so the *other* workers must
/// observe the flag cross-thread through the shared budget.
struct CancelAtPoll {
    token: CancelToken,
    remaining: AtomicU64,
    polls: AtomicU64,
}

impl CancelAtPoll {
    fn at_poll(token: CancelToken, k: u64) -> Self {
        CancelAtPoll {
            token,
            remaining: AtomicU64::new(k.saturating_sub(1)),
            polls: AtomicU64::new(0),
        }
    }

    fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }
}

impl DeadlineClock for CancelAtPoll {
    fn expired(&self) -> bool {
        self.polls.fetch_add(1, Ordering::Relaxed);
        if self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_err()
        {
            self.token.cancel();
        }
        false
    }
}

#[test]
fn cancel_token_crosses_threads_mid_parallel_run() {
    // Deterministic cross-thread cancellation: one worker's poll raises
    // the token mid-run; every other worker observes it through the
    // shared budget and stops within one check interval.
    let g = graph(12);
    let cfg = RefineConfig::default();
    let full = filter_refine_sky(&g, &cfg);
    let threads = 4;
    let total = calibrate(|b| {
        filter_refine_sky_par_budgeted(&g, &cfg, threads, b);
    });
    for k in trip_points(total) {
        let budget = ExecutionBudget::unlimited().check_interval(1);
        let clock = Arc::new(CancelAtPoll::at_poll(budget.cancel_token(), k));
        let budget = budget.deadline(Arc::clone(&clock));
        let partial = filter_refine_sky_par_budgeted(&g, &cfg, threads, &budget);
        assert_eq!(partial.completion, Completion::Cancelled, "k={k}");
        // Cancellation is checked *before* the deadline clock, so once a
        // worker sees the flag its polls stop counting: each of the
        // other workers lands at most one further consultation.
        assert!(
            clock.polls() >= k && clock.polls() < k + threads as u64,
            "k={k}: {} polls — a worker outlived its check interval",
            clock.polls()
        );
        for v in &partial.skyline {
            assert!(full.skyline.binary_search(v).is_ok(), "unsound partial");
        }
    }
}

#[test]
fn zero_timeout_trips_every_kernel_without_panicking() {
    let g = graph(11);
    let cfg = RefineConfig::default();
    let zero = || ExecutionBudget::with_timeout(Duration::ZERO).check_interval(1);
    assert!(!base_sky_budgeted(&g, &zero()).completion.is_complete());
    assert!(!filter_refine_sky_budgeted(&g, &cfg, &zero())
        .completion
        .is_complete());
    assert!(!filter_refine_sky_par_budgeted(&g, &cfg, 3, &zero())
        .completion
        .is_complete());
    assert!(!max_clique_bnb_budgeted(&g, &zero())
        .completion
        .is_complete());
    assert!(!mc_brb_budgeted(&g, &zero()).completion.is_complete());
    assert!(!nei_sky_mc_budgeted(&g, &zero()).completion.is_complete());
    assert!(!top_k_cliques_budgeted(&g, 3, TopkMode::Base, &zero())
        .completion
        .is_complete());
    assert!(
        !greedy_group_budgeted(&g, Closeness, 3, &GreedyOptions::optimized(), &zero())
            .completion
            .is_complete()
    );
    assert!(!nei_sky_group_budgeted(&g, Harmonic, 3, true, &zero())
        .greedy
        .completion
        .is_complete());
}
