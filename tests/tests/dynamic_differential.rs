//! Differential proof of incremental skyline maintenance: after every
//! single edge delta and after randomized batches, the incremental
//! engine (`MutableSkyline`) must agree exactly with a from-scratch
//! recompute — across adversarial generator families and composed with
//! the fault matrix (deadline trips mid-batch must leave an exact
//! committed prefix, and resume must converge to the exact answer).
//!
//! Randomness is the library's own SplitMix64 (seeded, reproducible);
//! the from-scratch reference is the `O(n²·dmax)` naive oracle, which
//! shares no code with the incremental path.

use nsky_graph::generators::{barabasi_albert, erdos_renyi};
use nsky_graph::prng::SplitMix64;
use nsky_graph::{EdgeDelta, Graph, VertexId};
use nsky_skyline::budget::{ExecutionBudget, TripClock};
use nsky_skyline::incremental::DynamicSkyline;
use nsky_skyline::oracle::naive_skyline;
use nsky_skyline::{filter_refine_sky, ExecutionContext, MutableSkyline, RefineConfig};
use std::collections::BTreeSet;

/// A chain of closed-twin pairs: `2i`/`2i+1` share a closed
/// neighborhood, so every toggle shuffles tie-break decisions.
fn twin_chain(k: usize) -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for i in 0..k {
        let v = (2 * i) as u32;
        let t = v + 1;
        edges.push((v, t));
        if i + 1 < k {
            for a in [v, t] {
                for b in [v + 2, v + 3] {
                    edges.push((a, b));
                }
            }
        }
    }
    Graph::from_edges(2 * k, edges)
}

/// Two bridged hubs with private leaves: hub/leaf domination flips on
/// single-edge changes near the bridge.
fn double_star(a: usize, b: usize) -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = vec![(0, 1)];
    for leaf in 0..a {
        edges.push((0, (2 + leaf) as u32));
    }
    for leaf in 0..b {
        edges.push((1, (2 + a + leaf) as u32));
    }
    Graph::from_edges(2 + a + b, edges)
}

/// Complete bipartite `K_{a,b}`: the skyline collapses to one side and
/// a single deletion un-collapses it.
fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for u in 0..a {
        for v in 0..b {
            edges.push((u as u32, (a + v) as u32));
        }
    }
    Graph::from_edges(a + b, edges)
}

/// The differential matrix's generator families: twin-heavy, star-like,
/// bipartite-degenerate, and ER/BA random stand-ins.
fn families(seed: u64) -> Vec<(String, Graph)> {
    vec![
        ("twin_chain(6)".into(), twin_chain(6)),
        ("double_star(5,8)".into(), double_star(5, 8)),
        ("k_bipartite(4,7)".into(), complete_bipartite(4, 7)),
        ("er(40,0.08)".into(), erdos_renyi(40, 0.08, seed)),
        ("er(60,0.04)".into(), erdos_renyi(60, 0.04, seed ^ 0xA5)),
        ("ba(50,2)".into(), barabasi_albert(50, 2, seed ^ 0x5A)),
    ]
}

/// A uniformly random delta (either kind) on `n` vertices.
fn random_delta(rng: &mut SplitMix64, n: usize) -> EdgeDelta {
    let u = rng.next_below(n as u64) as VertexId;
    let mut v = rng.next_below(n as u64) as VertexId;
    if u == v {
        v = (v + 1) % n as VertexId;
    }
    if rng.next_bool(0.5) {
        EdgeDelta::Insert(u, v)
    } else {
        EdgeDelta::Delete(u, v)
    }
}

/// A batch of deltas that are all *effective* on `g` when applied in
/// order (no duplicate inserts / absent deletes), tracked against a
/// shadow edge set — the precondition for inverse round-trips.
fn effective_batch(rng: &mut SplitMix64, g: &Graph, len: usize) -> Vec<EdgeDelta> {
    let n = g.num_vertices();
    let mut present: BTreeSet<(VertexId, VertexId)> = g.edges().collect();
    let mut batch = Vec::with_capacity(len);
    while batch.len() < len {
        let d = random_delta(rng, n);
        let (u, v) = d.endpoints();
        let key = (u.min(v), u.max(v));
        if d.is_insert() == present.contains(&key) {
            continue; // would be a no-op at this point in the batch
        }
        if d.is_insert() {
            present.insert(key);
        } else {
            present.remove(&key);
        }
        batch.push(d);
    }
    batch
}

#[test]
fn every_single_delta_matches_from_scratch_across_families() {
    for (label, g) in families(101) {
        let mut engine = MutableSkyline::new(g.clone());
        let n = g.num_vertices();
        let mut rng = SplitMix64::new(0xD1FF ^ n as u64);
        for step in 0..50 {
            let d = random_delta(&mut rng, n);
            let out = engine.apply_batch(&[d]);
            assert!(out.is_complete(), "{label} step {step}");
            let current = engine.current_graph();
            let truth = naive_skyline(&current).skyline;
            assert_eq!(out.skyline, truth, "{label} step {step} delta {d}");
            // The from-scratch production kernel agrees too.
            assert_eq!(
                filter_refine_sky(&current, &RefineConfig::default()).skyline,
                truth,
                "{label} step {step}"
            );
        }
    }
}

#[test]
fn insert_only_delete_only_and_mixed_batches_match_from_scratch() {
    for (label, g) in families(202) {
        let n = g.num_vertices();
        let mut rng = SplitMix64::new(0xBA7C ^ n as u64);
        // Insert-only, delete-only, and mixed batches, each checked
        // against the oracle on the resulting graph.
        let inserts: Vec<EdgeDelta> = (0..40)
            .map(|_| {
                let (u, v) = random_delta(&mut rng, n).endpoints();
                EdgeDelta::Insert(u, v)
            })
            .collect();
        let deletes: Vec<EdgeDelta> = g
            .edges()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, (u, v))| EdgeDelta::Delete(u, v))
            .collect();
        let mixed: Vec<EdgeDelta> = (0..60).map(|_| random_delta(&mut rng, n)).collect();
        for (kind, batch) in [
            ("insert-only", inserts),
            ("delete-only", deletes),
            ("mixed", mixed),
        ] {
            let mut engine = MutableSkyline::new(g.clone());
            let out = engine.apply_batch(&batch);
            assert!(out.is_complete(), "{label} {kind}");
            assert_eq!(out.cursor, batch.len(), "{label} {kind}");
            assert_eq!(
                out.skyline,
                naive_skyline(&engine.current_graph()).skyline,
                "{label} {kind}"
            );
        }
    }
}

#[test]
fn inverse_round_trips_restore_graph_and_skyline() {
    for (label, g) in families(303) {
        let mut rng = SplitMix64::new(0x1420 ^ g.num_edges() as u64);
        let forward = effective_batch(&mut rng, &g, 25);
        let backward: Vec<EdgeDelta> = forward.iter().rev().map(|d| d.inverse()).collect();
        let original_skyline = naive_skyline(&g).skyline;
        let mut engine = MutableSkyline::new(g.clone());
        let mid = engine.apply_batch(&forward);
        assert!(mid.is_complete(), "{label}");
        assert_eq!(mid.stats.skipped, 0, "{label}: batch built to be effective");
        let out = engine.apply_batch(&backward);
        assert!(out.is_complete(), "{label}");
        assert_eq!(engine.current_graph(), g, "{label}: graph not restored");
        assert_eq!(
            out.skyline, original_skyline,
            "{label}: skyline not restored"
        );
    }
}

/// Fault composition: a deadline trip mid-batch must leave the engine
/// exactly at a delta boundary — the partial answer is the *exact*
/// skyline of the committed prefix — and resuming the same batch (via
/// the trip's snapshot) must converge to the exact final answer.
#[test]
fn deadline_trips_mid_batch_yield_exact_prefixes_and_resume_converges() {
    for (label, g) in families(404) {
        let n = g.num_vertices();
        let mut rng = SplitMix64::new(0xFA17 ^ n as u64);
        let batch: Vec<EdgeDelta> = (0..30).map(|_| random_delta(&mut rng, n)).collect();
        let full_truth = {
            let mut reference = MutableSkyline::new(g.clone());
            let out = reference.apply_batch(&batch);
            assert_eq!(
                out.skyline,
                naive_skyline(&reference.current_graph()).skyline,
                "{label}: reference run"
            );
            out.skyline
        };
        for trip_at in [1u64, 5, 13, 41, 97] {
            let mut engine = MutableSkyline::new(g.clone());
            let budget = ExecutionBudget::unlimited()
                .deadline(TripClock::at_poll(trip_at))
                .check_interval(1);
            let run = engine.apply_batch_with(&batch, &mut ExecutionContext::new().budget(&budget));
            if run.outcome.is_complete() {
                assert_eq!(run.outcome.skyline, full_truth, "{label} trip@{trip_at}");
                continue;
            }
            let cursor = run.outcome.cursor;
            assert!(cursor < batch.len(), "{label} trip@{trip_at}");
            // Soundness, strengthened: the partial answer is the exact
            // skyline of the graph after the committed prefix.
            let mut prefix = MutableSkyline::new(g.clone());
            prefix.apply_batch(&batch[..cursor]);
            assert_eq!(
                run.outcome.skyline,
                naive_skyline(&prefix.current_graph()).skyline,
                "{label} trip@{trip_at}: partial not exact for prefix"
            );
            // Convergence: resume the same batch from the snapshot on
            // a *fresh* engine (crash recovery) and on the same engine.
            let snapshot = run.snapshot.expect("tripped run must snapshot");
            let mut fresh = MutableSkyline::new(g.clone());
            let recovered = fresh
                .apply_batch_with(&batch, &mut ExecutionContext::new().resume(Some(&snapshot)))
                .outcome;
            assert!(recovered.is_complete(), "{label} trip@{trip_at}");
            assert_eq!(
                recovered.skyline, full_truth,
                "{label} trip@{trip_at}: fresh"
            );
            let resumed = engine.apply_batch(&batch);
            assert!(resumed.is_complete(), "{label} trip@{trip_at}");
            assert_eq!(resumed.skyline, full_truth, "{label} trip@{trip_at}: same");
        }
    }
}

/// Satellite: the existing vertex-removal engine, swept with SplitMix64
/// removal orders across all generator families against the residual
/// oracle (induced subgraph + naive skyline, mapped back).
#[test]
fn vertex_removal_sweep_matches_residual_oracle_across_families() {
    for (label, g) in families(505) {
        let n = g.num_vertices();
        let mut rng = SplitMix64::new(0x0DE7 ^ n as u64);
        let mut dyn_sky = DynamicSkyline::new(&g);
        let mut order: Vec<VertexId> = g.vertices().collect();
        rng.shuffle(&mut order);
        let mut removed: BTreeSet<VertexId> = BTreeSet::new();
        for &x in order.iter().take(n / 2) {
            dyn_sky.remove_vertex(x);
            removed.insert(x);
            let keep: Vec<VertexId> = g.vertices().filter(|u| !removed.contains(u)).collect();
            let (sub, map) = nsky_graph::ops::induced_subgraph(&g, &keep);
            let expect: Vec<VertexId> = naive_skyline(&sub)
                .skyline
                .iter()
                .map(|&u| map[u as usize])
                .collect();
            assert_eq!(dyn_sky.skyline(), expect, "{label} removed {removed:?}");
        }
    }
}

/// Satellite cross-check: vertex removal re-expressed as a delta batch.
/// Deleting every edge incident to a removal set `X` leaves `X`
/// isolated (skyline by convention), so the edge-delta engine's skyline
/// must equal the vertex-removal engine's residual skyline plus `X`.
#[test]
fn vertex_removal_agrees_with_its_delta_batch_encoding() {
    for (label, g) in families(606) {
        let n = g.num_vertices();
        let mut rng = SplitMix64::new(0xC0DE ^ n as u64);
        let mut order: Vec<VertexId> = g.vertices().collect();
        rng.shuffle(&mut order);
        let removal: BTreeSet<VertexId> = order.iter().copied().take(n / 3).collect();
        // Vertex-removal engine.
        let mut dyn_sky = DynamicSkyline::new(&g);
        for &x in &removal {
            dyn_sky.remove_vertex(x);
        }
        // The same mutation as an edge-delta batch.
        let batch: Vec<EdgeDelta> = g
            .edges()
            .filter(|&(u, v)| removal.contains(&u) || removal.contains(&v))
            .map(|(u, v)| EdgeDelta::Delete(u, v))
            .collect();
        let mut engine = MutableSkyline::new(g.clone());
        let out = engine.apply_batch(&batch);
        assert!(out.is_complete(), "{label}");
        let mut expect: Vec<VertexId> = dyn_sky.skyline();
        expect.extend(removal.iter().copied());
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(out.skyline, expect, "{label} removal {removal:?}");
    }
}
