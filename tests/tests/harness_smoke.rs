//! Smoke tests over the figure harness (quick configurations): the
//! structural claims of each exhibit must hold on every run.

use nsky_bench::figures;

#[test]
fn table1_reports_both_columns() {
    let rows = figures::table1();
    assert_eq!(rows.len(), 5);
    for r in rows {
        assert!(r.original.0 > r.standin.0, "{}: scaled down", r.name);
        assert!(r.standin.1 > 0);
    }
}

#[test]
fn fig2_matches_closed_forms() {
    for r in figures::fig2() {
        assert_eq!(r.skyline, r.expected, "{}", r.family);
        assert_eq!(r.candidates, r.expected, "{}", r.family);
    }
}

#[test]
fn fig3_filter_refine_wins() {
    for r in figures::fig3(true) {
        assert!(
            r.secs_refine <= r.secs_base,
            "{}: FilterRefineSky ({}s) slower than BaseSky ({}s)",
            r.dataset,
            r.secs_refine,
            r.secs_base
        );
        assert!(r.skyline <= r.candidates);
        assert!(r.candidates <= r.n);
        // Fig. 4 ordering: Base2Hop is the memory hog when it runs.
        if r.mem_two_hop != usize::MAX {
            assert!(r.mem_two_hop > r.mem_base, "{}", r.dataset);
        }
    }
}

#[test]
fn fig6_er_vs_powerlaw_contrast() {
    let er = figures::fig6_er(true);
    let pl = figures::fig6_pl(true);
    // ER graphs: skyline close to the whole vertex set (paper Fig. 6a).
    for r in &er {
        assert!(
            r.skyline as f64 > 0.6 * r.total as f64,
            "ER Δp={}: |R|={} of {}",
            r.parameter,
            r.skyline,
            r.total
        );
    }
    // Power-law graphs: skyline well below the vertex set (Fig. 6b).
    for r in &pl {
        assert!(
            (r.skyline as f64) < 0.6 * r.total as f64,
            "PL β={}: |R|={} of {}",
            r.parameter,
            r.skyline,
            r.total
        );
        assert!(r.skyline <= r.candidates);
    }
}

#[test]
fn fig7_fig8_pruning_never_loses_quality() {
    for r in figures::fig7(true) {
        assert!(
            r.score_neisky >= r.score_base - 1e-9,
            "{} k={}",
            r.dataset,
            r.k
        );
        assert!(r.evals_neisky <= r.evals_base, "{} k={}", r.dataset, r.k);
        assert!(r.skyline_size > 0);
    }
    for r in figures::fig8(true) {
        assert!(
            r.score_neisky >= r.score_base - 1e-9,
            "{} k={}",
            r.dataset,
            r.k
        );
        assert!(r.evals_neisky <= r.evals_base);
    }
}

#[test]
fn fig9_round_sizes_non_increasing() {
    for r in figures::fig9(true) {
        assert_eq!(
            r.sizes_base[0], r.sizes_neisky[0],
            "{} k={}",
            r.dataset, r.k
        );
        for w in r.sizes_neisky.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}

#[test]
fn fig10_through_table2_run() {
    for r in figures::fig10(true) {
        assert!(r.secs_base > 0.0 && r.secs_fast > 0.0);
    }
    for r in figures::fig11(true) {
        assert!(r.secs_base > 0.0 && r.secs_fast > 0.0);
    }
    for r in figures::table2(true) {
        assert!(r.omega >= 2);
    }
}

#[test]
fn fig13_case_studies() {
    let rows = figures::fig13();
    assert_eq!(rows.len(), 2);
    let karate = &rows[0];
    assert_eq!(karate.skyline.len(), 15, "paper-exact Karate skyline");
    let bombing = &rows[1];
    let frac = bombing.skyline.len() as f64 / bombing.n as f64;
    assert!((0.15..=0.45).contains(&frac));
    for r in &rows {
        assert!(r.skyline_avg_degree > r.dominated_avg_degree);
    }
}
