//! Property tests for the beyond-the-paper modules: approximate skyline,
//! MIS reduction, threshold graphs, betweenness and the prefix tree.
//!
//! The always-on cases drive the properties with the library's own
//! deterministic SplitMix64 stream so the suite is hermetic (no registry
//! dependencies; DESIGN.md §3). The original proptest shrinking suite is
//! kept behind the opt-in `--cfg nsky_proptest` (DESIGN.md §8).

use nsky_clique::mis::{exact_mis, is_independent_set, reducing_peeling_mis};
use nsky_graph::prng::SplitMix64;
use nsky_graph::threshold::{random_threshold_graph, threshold_graph, ThresholdStep};
use nsky_graph::{Graph, VertexId};
use nsky_skyline::approx::{approx_dominates, approx_sky};
use nsky_skyline::{base_sky, filter_refine_sky, RefineConfig};

/// Deterministic stand-in for the proptest `arbitrary_graph` strategy:
/// up to 35 vertices, up to 90 multigraph edges, normalized by the
/// builder.
fn arbitrary_graph(rng: &mut SplitMix64) -> Graph {
    let n = 1 + rng.next_index(34);
    let m = rng.next_index(90);
    let edges: Vec<(VertexId, VertexId)> = (0..m)
        .map(|_| {
            (
                rng.next_below(n as u64) as u32,
                rng.next_below(n as u64) as u32,
            )
        })
        .collect();
    Graph::from_edges(n, edges)
}

/// ε = 0 approximate skyline equals the exact skyline.
#[test]
fn approx_zero_is_exact() {
    let mut rng = SplitMix64::new(0xA110);
    for _ in 0..48 {
        let g = arbitrary_graph(&mut rng);
        assert_eq!(approx_sky(&g, 0.0).skyline, base_sky(&g).skyline);
    }
}

/// Pairwise ε-inclusion is monotone in ε (the guaranteed half of the
/// monotonicity story: the skyline itself is NOT antitone, because a
/// strict domination can turn mutual and the ID tie-break can resurrect
/// the dominated vertex — see `approx` module docs).
#[test]
fn approx_inclusion_is_monotone_in_epsilon() {
    let mut rng = SplitMix64::new(0xA111);
    for _ in 0..48 {
        let g = arbitrary_graph(&mut rng);
        for u in g.vertices() {
            for w in g.vertices() {
                if u == w {
                    continue;
                }
                // Strict domination (forward holds, reverse fails at the
                // SAME ε) may flip, but forward ε-inclusion itself only
                // gains pairs as ε grows. approx_dominates(w, u, ε) with
                // the reverse check removed == inclusion; probe via the
                // public API: if w ε1-dominates u strictly (reverse
                // fails even at ε2), it still ε2-dominates.
                let d1 = approx_dominates(&g, w, u, 0.2);
                let reverse_at_high =
                    approx_dominates(&g, u, w, 0.7) || approx_dominates(&g, w, u, 0.7); // pair comparable at ε2
                if d1 {
                    assert!(
                        reverse_at_high,
                        "pair ({w},{u}) comparable at ε=0.2 but not at ε=0.7"
                    );
                }
            }
        }
    }
}

/// ε-domination: exact pairwise oracle agrees with the scan.
#[test]
fn approx_scan_matches_pairwise() {
    let mut rng = SplitMix64::new(0xA112);
    for case in 0..48 {
        let g = arbitrary_graph(&mut rng);
        let eps = [0.0, 0.2, 0.45, 0.7][case % 4];
        let expect: Vec<VertexId> = g
            .vertices()
            .filter(|&u| {
                !g.vertices()
                    .any(|w| w != u && approx_dominates(&g, w, u, eps))
            })
            .collect();
        assert_eq!(approx_sky(&g, eps).skyline, expect);
    }
}

/// The reducing–peeling MIS is always independent and never worse than
/// the exact optimum minus a small gap on small graphs.
#[test]
fn mis_is_independent_and_near_optimal() {
    let mut rng = SplitMix64::new(0xA113);
    for _ in 0..48 {
        let g = arbitrary_graph(&mut rng);
        let heur = reducing_peeling_mis(&g);
        assert!(is_independent_set(&g, &heur));
        if g.num_vertices() <= 26 {
            let opt = exact_mis(&g);
            assert!(heur.len() <= opt.len());
            assert!(
                heur.len() + 2 >= opt.len(),
                "heuristic {} far below optimum {}",
                heur.len(),
                opt.len()
            );
        }
    }
}

/// Constructed threshold graphs are recognized; their non-isolated
/// skyline is a single vertex.
#[test]
fn threshold_construction_roundtrip() {
    let mut rng = SplitMix64::new(0xA114);
    for _ in 0..64 {
        let len = 1 + rng.next_index(29);
        let steps: Vec<ThresholdStep> = (0..len)
            .map(|_| {
                if rng.next_bool(0.5) {
                    ThresholdStep::Dominating
                } else {
                    ThresholdStep::Isolated
                }
            })
            .collect();
        let g = threshold_graph(&steps);
        assert!(nsky_graph::threshold::is_threshold(&g));
        let isolated = g.vertices().filter(|&u| g.degree(u) == 0).count();
        let r = filter_refine_sky(&g, &RefineConfig::default());
        if isolated < g.num_vertices() {
            assert_eq!(r.len(), isolated + 1);
        } else {
            assert_eq!(r.len(), g.num_vertices());
        }
    }
}

/// Adding one random edge to a threshold graph is either still a
/// threshold graph or correctly rejected — and recognition never panics
/// either way.
#[test]
fn threshold_recognition_is_total() {
    let mut rng = SplitMix64::new(0xA115);
    for seed in 0..500 {
        let g = random_threshold_graph(20, 0.5, seed);
        let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
        edges.push((rng.next_below(20) as u32, rng.next_below(20) as u32));
        let h = Graph::from_edges(20, edges);
        let _ = nsky_graph::threshold::is_threshold(&h);
    }
}

/// Prefix-tree join equals the per-query join on arbitrary inputs.
#[test]
fn prefix_tree_join_matches_per_query() {
    use nsky_setjoin::{InvertedIndex, PrefixTree};
    use std::collections::BTreeSet;
    let mut rng = SplitMix64::new(0xA116);
    let mut random_sets = |count_max: usize, set_max: usize, min_count: usize| -> Vec<Vec<u32>> {
        let count = min_count + rng.next_index(count_max - min_count + 1);
        (0..count)
            .map(|_| {
                let k = rng.next_index(set_max + 1);
                let mut s = BTreeSet::new();
                for _ in 0..k {
                    s.insert(rng.next_below(20) as u32);
                }
                s.into_iter().collect()
            })
            .collect()
    };
    for case in 0..48 {
        let records = random_sets(24, 5, 1);
        let queries = random_sets(24, 4, 0);
        let idx = InvertedIndex::build(&records, 20);
        let tree = PrefixTree::build(&queries, &idx);
        let joined = tree.containment_join(&idx);
        for (qid, q) in queries.iter().enumerate() {
            assert_eq!(
                &joined[qid],
                &idx.supersets_of(q),
                "case {case} query {qid}"
            );
        }
    }
}

/// Betweenness sanity on arbitrary graphs: non-negative, zero for
/// leaves, and the sum over vertices equals the total interior pair
/// weight.
#[test]
fn betweenness_invariants() {
    use nsky_centrality::betweenness::{betweenness, group_betweenness};
    for seed in 0..8 {
        let g = nsky_graph::generators::erdos_renyi(30, 0.12, seed);
        let b = betweenness(&g);
        for u in g.vertices() {
            assert!(b[u as usize] >= -1e-9);
            if g.degree(u) <= 1 {
                assert!(b[u as usize].abs() < 1e-9, "leaf with betweenness");
            }
            // Singleton group betweenness equals vertex betweenness.
            let gb = group_betweenness(&g, &[u]);
            assert!(
                (gb - b[u as usize]).abs() < 1e-6,
                "seed {seed} vertex {u}: GB {gb} vs BC {}",
                b[u as usize]
            );
        }
    }
}

/// Opt-in proptest shrinking suite (`RUSTFLAGS="--cfg nsky_proptest"`
/// plus a manually added `proptest` dev-dependency; DESIGN.md §8).
#[cfg(nsky_proptest)]
mod property {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_graph_strategy() -> impl Strategy<Value = Graph> {
        (
            1usize..35,
            proptest::collection::vec((0u32..35, 0u32..35), 0..90),
        )
            .prop_map(|(n, edges)| {
                Graph::from_edges(
                    n,
                    edges.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)),
                )
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn approx_zero_is_exact_proptest(g in arbitrary_graph_strategy()) {
            prop_assert_eq!(approx_sky(&g, 0.0).skyline, base_sky(&g).skyline);
        }

        #[test]
        fn approx_scan_matches_pairwise_proptest(
            g in arbitrary_graph_strategy(),
            e in 0usize..4,
        ) {
            let eps = [0.0, 0.2, 0.45, 0.7][e];
            let expect: Vec<VertexId> = g
                .vertices()
                .filter(|&u| !g.vertices().any(|w| w != u && approx_dominates(&g, w, u, eps)))
                .collect();
            prop_assert_eq!(approx_sky(&g, eps).skyline, expect);
        }

        #[test]
        fn mis_is_independent_and_near_optimal_proptest(g in arbitrary_graph_strategy()) {
            let heur = reducing_peeling_mis(&g);
            prop_assert!(is_independent_set(&g, &heur));
            if g.num_vertices() <= 26 {
                let opt = exact_mis(&g);
                prop_assert!(heur.len() <= opt.len());
                prop_assert!(heur.len() + 2 >= opt.len());
            }
        }
    }
}
